"""Tests for the durability layer: WAL, checkpoints, crash recovery.

Covers the exact byte-level framing contract (torn tails are repaired,
mid-log corruption raises), the checkpoint protocol's crash windows, the
fault-injected kill-mid-record path, and the satellite fixes to
``UpdatableC2LSH`` (over-fetch, budget threading, tombstone arrays).
"""

import os
import shutil
import struct

import numpy as np
import pytest

from repro import (
    CorruptIndexError,
    DurableUpdatableC2LSH,
    FaultInjector,
    FaultPlan,
    FaultRule,
    QueryBudget,
    TransientIOError,
)
from repro.core.updatable import UpdatableC2LSH
from repro.durability import (
    CHECKPOINT_BEGIN,
    DELETE,
    INSERT,
    WriteAheadLog,
    load_checkpoint,
    save_checkpoint,
    scan_log,
)
from repro.durability.wal import (
    decode_delete,
    decode_insert,
    encode_delete,
    encode_insert,
    encode_meta,
)

DIM = 8
HEADER_SIZE = 16  # magic + version + base seqno

#: CI sweeps this (see the ``durability`` job): it shifts the RNG streams
#: feeding the fault-injected crash tests so each matrix leg kills the
#: writer at different points with different data.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def make_index(path, **overrides):
    kwargs = dict(seed=0, c=2, min_index_size=60, rebuild_threshold=0.3,
                  fsync=False)
    kwargs.update(overrides)
    return DurableUpdatableC2LSH(path, **kwargs)


class TestWalFraming:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        rng = np.random.default_rng(0)
        rows = rng.standard_normal((3, DIM))
        with WriteAheadLog(path) as wal:
            s0 = wal.append(INSERT, encode_insert(0, rows))
            s1 = wal.append(DELETE, encode_delete(np.array([1], np.int64)))
            s2 = wal.append(CHECKPOINT_BEGIN, encode_meta({"x": 1}))
        assert (s0, s1, s2) == (0, 1, 2)
        result = scan_log(path)
        assert not result.torn
        assert [r.seqno for r in result.records] == [0, 1, 2]
        start, got = decode_insert(result.records[0].body)
        assert start == 0 and np.array_equal(got, rows)
        assert decode_delete(result.records[1].body).tolist() == [1]

    def test_empty_log_scans_clean(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            assert wal.next_seqno == 0
        result = scan_log(tmp_path / "wal.log")
        assert result.records == [] and not result.torn

    def test_reopen_continues_seqno(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(DELETE, encode_delete(np.array([0], np.int64)))
        with WriteAheadLog(path) as wal:
            assert wal.next_seqno == 1
            assert wal.append(DELETE,
                              encode_delete(np.array([1], np.int64))) == 1

    @pytest.mark.parametrize("drop", [1, 3, 7, 11])
    def test_torn_tail_at_any_byte_truncates(self, tmp_path, drop):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(DELETE, encode_delete(np.array([0], np.int64)))
            wal.append(DELETE, encode_delete(np.array([1], np.int64)))
        intact = scan_log(path)
        size = os.path.getsize(path)
        cut = size - drop
        assert cut > intact.records[0].end - 1  # tear only the last record
        with open(path, "r+b") as fh:
            fh.truncate(cut)
        result = scan_log(path)
        assert result.torn
        assert [r.seqno for r in result.records] == [0]
        assert result.good_size == intact.records[0].end
        # Reopening repairs the tear and appends continue from seqno 1.
        with WriteAheadLog(path) as wal:
            assert wal.next_seqno == 1
            assert wal.metrics.snapshot()["durability.torn_tail"] == 1
        assert not scan_log(path).torn

    def test_tear_inside_first_record(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(DELETE, encode_delete(np.array([0], np.int64)))
        with open(path, "r+b") as fh:
            fh.truncate(HEADER_SIZE + 3)
        result = scan_log(path)
        assert result.torn and result.records == []
        assert result.good_size == HEADER_SIZE

    def test_corrupt_final_record_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(DELETE, encode_delete(np.array([0], np.int64)))
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        result = scan_log(path)
        assert result.torn and result.records == []

    def test_corrupt_mid_log_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(DELETE, encode_delete(np.array([0], np.int64)))
            wal.append(DELETE, encode_delete(np.array([1], np.int64)))
        first = scan_log(path).records[0]
        with open(path, "r+b") as fh:
            fh.seek(first.end - 1)  # last payload byte of record 0
            byte = fh.read(1)
            fh.seek(first.end - 1)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptIndexError, match="wal_record_0"):
            scan_log(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(DELETE, encode_delete(np.array([0], np.int64)))
        # Re-frame the record with a wrong seqno but a valid CRC.
        import zlib
        payload = struct.pack("<BQ", DELETE, 5) \
            + encode_delete(np.array([0], np.int64))
        frame = struct.pack("<II", len(payload),
                            zlib.crc32(payload) & 0xFFFFFFFF) + payload
        with open(path, "r+b") as fh:
            fh.truncate(HEADER_SIZE)
            fh.seek(HEADER_SIZE)
            fh.write(frame)
        with pytest.raises(CorruptIndexError, match="sequence gap"):
            scan_log(path)

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOPE" + b"\x00" * 12)
        with pytest.raises(CorruptIndexError, match="wal_header"):
            scan_log(path)
        path.write_bytes(b"RW")  # shorter than a header
        with pytest.raises(CorruptIndexError, match="wal_header"):
            scan_log(path)

    def test_reset_rotates_and_continues_numbering(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(DELETE, encode_delete(np.array([0], np.int64)))
            wal.append(DELETE, encode_delete(np.array([1], np.int64)))
            wal.reset()
            assert wal.next_seqno == 2
            wal.append(DELETE, encode_delete(np.array([2], np.int64)))
        result = scan_log(path)
        assert result.base_seqno == 2
        assert [r.seqno for r in result.records] == [2]

    def test_fsync_true_appends(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=True) as wal:
            wal.append(DELETE, encode_delete(np.array([0], np.int64)))
            assert wal.metrics.snapshot()["durability.wal_appends"] == 1


class TestCheckpoint:
    def test_snapshot_round_trip_exact_state(self, tmp_path):
        rng = np.random.default_rng(3)
        index = UpdatableC2LSH(seed=0, c=2, min_index_size=60,
                               rebuild_threshold=0.3)
        h = index.insert(rng.standard_normal((150, DIM)))
        index.delete(h[:7])
        index.insert(rng.standard_normal((20, DIM)))  # leaves a buffer
        config = {"rebuild_threshold": 0.3, "min_index_size": 60,
                  "c2lsh_kwargs": {"seed": 0, "c": 2}}
        path = save_checkpoint(tmp_path / "state.npz", index,
                               wal_seqno=41, config=config)
        restored, seqno, stored = load_checkpoint(path)
        assert seqno == 41 and stored == config
        assert len(restored) == len(index)
        assert restored._next_id == index._next_id
        assert restored.rebuilds == index.rebuilds
        assert restored._deleted == index._deleted
        assert np.array_equal(restored._indexed_ids, index._indexed_ids)
        assert len(restored._buffer) == len(index._buffer)
        q = rng.standard_normal(DIM)
        a, b = index.query(q, k=5), restored.query(q, k=5)
        assert np.array_equal(a.ids, b.ids)
        assert np.allclose(a.distances, b.distances)

    def test_empty_index_round_trip(self, tmp_path):
        index = UpdatableC2LSH(seed=0)
        path = save_checkpoint(tmp_path / "state.npz", index, wal_seqno=-1)
        restored, seqno, _ = load_checkpoint(path)
        assert seqno == -1 and len(restored) == 0
        assert restored._dim is None

    def test_flipped_byte_raises_corrupt(self, tmp_path):
        index = UpdatableC2LSH(seed=0)
        index.insert(np.random.default_rng(0).standard_normal((10, DIM)))
        path = save_checkpoint(tmp_path / "state.npz", index, wal_seqno=9)
        blob = bytearray((tmp_path / "state.npz").read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (tmp_path / "state.npz").write_bytes(bytes(blob))
        with pytest.raises(CorruptIndexError):
            load_checkpoint(path)


class TestDurableIndex:
    def test_reopen_reproduces_state_and_answers(self, tmp_path):
        rng = np.random.default_rng(4)
        q = rng.standard_normal(DIM)
        idx = make_index(tmp_path / "idx")
        h1 = idx.insert(rng.standard_normal((120, DIM)))
        idx.delete(h1[:11])
        idx.checkpoint()
        h2 = idx.insert(rng.standard_normal((25, DIM)))
        idx.delete([h2[0], h1[50]])
        before = idx.query(q, k=5)
        idx.close()

        rec = make_index(tmp_path / "idx")
        assert len(rec) == 120 - 11 + 25 - 2
        assert rec.rebuilds == idx.rebuilds
        assert rec.recovered_records == 2
        after = rec.query(q, k=5)
        assert np.array_equal(before.ids, after.ids)
        assert np.allclose(before.distances, after.distances)
        # Handles keep counting from where the crashed instance stopped.
        h3 = rec.insert(rng.standard_normal((1, DIM)))
        assert h3[0] == h2[-1] + 1
        rec.close()

    def test_recovery_without_any_checkpoint(self, tmp_path):
        rng = np.random.default_rng(5)
        idx = make_index(tmp_path / "idx")
        h = idx.insert(rng.standard_normal((70, DIM)))
        idx.delete(h[:3])
        idx.close()
        rec = make_index(tmp_path / "idx")
        assert len(rec) == 67 and rec.recovered_records == 2
        rec.close()

    def test_stale_log_replay_is_idempotent(self, tmp_path):
        """Crash between the snapshot rename and the log rotation."""
        rng = np.random.default_rng(6)
        idx = make_index(tmp_path / "idx")
        h = idx.insert(rng.standard_normal((80, DIM)))
        idx.delete(h[:5])
        pre_rotate = (tmp_path / "idx" / "wal.log").read_bytes()
        idx.checkpoint()
        idx.close()
        # Simulate the rotation never reaching the disk: the full old log
        # (insert, delete, checkpoint-begin) sits next to the new snapshot.
        (tmp_path / "idx" / "wal.log").write_bytes(pre_rotate)
        rec = make_index(tmp_path / "idx")
        assert len(rec) == 75
        assert rec.recovered_records == 0  # everything was below the mark
        rec.close()

    def test_kill_mid_append_recovers_pre_crash_state(self, tmp_path):
        rng = np.random.default_rng(7 + CHAOS_SEED)
        q = rng.standard_normal(DIM)
        idx = make_index(tmp_path / "idx")
        idx.insert(rng.standard_normal((90, DIM)))
        oracle = idx.query(q, k=3)
        idx._wal.fault_injector = FaultInjector(
            FaultPlan((FaultRule("wal_append", "error"),)),
            seed=CHAOS_SEED)
        with pytest.raises(TransientIOError):
            idx.insert(rng.standard_normal((4, DIM)))
        with pytest.raises(TransientIOError):  # the log stays failed
            idx.delete(0)
        idx.close()
        rec = make_index(tmp_path / "idx")
        assert len(rec) == 90
        got = rec.query(q, k=3)
        assert np.array_equal(oracle.ids, got.ids)
        rec.close()

    def test_fsync_fault_fails_closed(self, tmp_path):
        idx = make_index(
            tmp_path / "idx",
            fault_injector=FaultInjector(
                FaultPlan((FaultRule("wal_fsync", "error"),)),
                seed=CHAOS_SEED),
            fsync=True)
        with pytest.raises(TransientIOError):
            idx.insert(np.zeros((1, DIM)))
        idx.close()

    def test_auto_checkpoint(self, tmp_path):
        rng = np.random.default_rng(8)
        idx = make_index(tmp_path / "idx", auto_checkpoint=3)
        for _ in range(7):
            idx.insert(rng.standard_normal((2, DIM)))
        snap = idx.metrics.snapshot()
        assert snap["durability.checkpoints"] == 2
        assert os.path.exists(idx.state_path)
        idx.close()

    def test_config_mismatch_rejected(self, tmp_path):
        idx = make_index(tmp_path / "idx")
        idx.insert(np.zeros((5, DIM)))
        idx.checkpoint()
        idx.close()
        with pytest.raises(ValueError, match="stored configuration"):
            make_index(tmp_path / "idx", min_index_size=61)

    def test_non_serializable_kwargs_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="JSON-serializable"):
            DurableUpdatableC2LSH(tmp_path / "idx",
                                  rng=np.random.default_rng(0))

    def test_invalid_ops_are_not_logged(self, tmp_path):
        idx = make_index(tmp_path / "idx")
        idx.insert(np.zeros((5, DIM)))
        appends = idx.metrics.snapshot()["durability.wal_appends"]
        with pytest.raises(ValueError):
            idx.insert(np.zeros((2, DIM + 1)))
        with pytest.raises(KeyError):
            idx.delete(99)
        assert idx.metrics.snapshot()["durability.wal_appends"] == appends
        idx.close()

    def test_recovery_metrics_recorded(self, tmp_path):
        idx = make_index(tmp_path / "idx")
        idx.insert(np.random.default_rng(9).standard_normal((10, DIM)))
        idx.close()
        rec = make_index(tmp_path / "idx")
        snap = rec.metrics.snapshot()
        assert snap["durability.wal_replays"] == 1
        assert snap["durability.recovery_seconds"]["count"] == 1
        rec.close()

    def test_corrupt_mid_log_surfaces_on_open(self, tmp_path):
        idx = make_index(tmp_path / "idx")
        idx.insert(np.zeros((5, DIM)))
        idx.delete(0)
        idx.close()
        first = scan_log(idx.wal_path).records[0]
        with open(idx.wal_path, "r+b") as fh:
            fh.seek(first.end - 1)
            byte = fh.read(1)
            fh.seek(first.end - 1)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptIndexError):
            make_index(tmp_path / "idx")

    def test_context_manager_and_repr(self, tmp_path):
        with make_index(tmp_path / "idx") as idx:
            idx.insert(np.zeros((2, DIM)))
            assert "DurableUpdatableC2LSH" in repr(idx)
            assert idx.index is idx._inner


class TestUpdatableSatellites:
    """The PR's smaller fixes to the in-memory wrapper."""

    def _built(self, rng, n=150):
        index = UpdatableC2LSH(seed=0, c=2, min_index_size=60,
                               rebuild_threshold=0.3)
        handles = index.insert(rng.standard_normal((n, DIM)) * 3)
        assert index._index is not None
        return index, handles

    def test_overfetch_counts_only_indexed_tombstones(self, rng):
        index, handles = self._built(rng)
        extra = index.insert(rng.standard_normal((10, DIM)))  # buffered
        index.delete(extra)          # tombstones refer only to the buffer
        assert index._deleted_indexed == 0
        seen = {}
        inner_query = index._index.query
        index._index.query = \
            lambda q, k=1, **kw: seen.update(k=k) or inner_query(q, k=k, **kw)
        index.query(rng.standard_normal(DIM), k=5)
        assert seen["k"] == 5  # not 5 + 10

    def test_overfetch_capped_at_indexed_size(self, rng):
        index, handles = self._built(rng, n=70)
        index.delete(handles[:65])
        assert index._deleted_indexed == 65
        seen = {}
        inner_query = index._index.query
        index._index.query = \
            lambda q, k=1, **kw: seen.update(k=k) or inner_query(q, k=k, **kw)
        result = index.query(rng.standard_normal(DIM), k=20)
        assert seen["k"] == 70  # min(indexed size, 20 + 65)
        assert len(result) == 5  # only 5 live points remain
        assert not np.isin(result.ids, handles[:65]).any()

    def test_budget_threads_through_and_degrades(self, rng):
        index, _ = self._built(rng, n=400)
        # A far-off query cannot satisfy T1/T2 in its first round, so the
        # (already expired) deadline trips at the first round boundary.
        result = index.query(np.full(DIM, 50.0), k=2,
                             budget=QueryBudget(deadline_s=1e-9))
        assert result.stats.degraded
        assert result.stats.budget_exhausted == "deadline"
        assert result.stats.terminated_by == "budget"

    def test_budget_none_unchanged(self, rng):
        index, _ = self._built(rng)
        result = index.query(rng.standard_normal(DIM), k=3)
        assert not result.stats.degraded

    def test_tombstone_array_stays_sorted_mirror(self, rng):
        index, handles = self._built(rng)
        victims = [int(handles[i]) for i in (40, 3, 77, 3, 12)]
        index.delete(victims)
        assert index._tombstones.dtype == np.int64
        assert np.array_equal(index._tombstones, np.unique(victims))
        assert set(index._tombstones.tolist()) == index._deleted
        index.delete(int(handles[2]))
        assert np.array_equal(index._tombstones,
                              np.unique(victims + [int(handles[2])]))

    def test_rebuild_clears_tombstone_state(self, rng):
        index, handles = self._built(rng)
        index.delete(handles[:20])
        index._rebuild()
        assert index._tombstones.size == 0
        assert index._deleted_indexed == 0
        assert len(index) == 130

    def test_delete_validates_before_mutating(self, rng):
        index, handles = self._built(rng)
        with pytest.raises(KeyError):
            index.delete([int(handles[0]), 10_000])
        assert index._deleted == set() and index._tombstones.size == 0
