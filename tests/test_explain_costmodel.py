"""Tests for the query tracer (EXPLAIN) and the device cost model."""

import numpy as np
import pytest

from repro import C2LSH, PageManager
from repro.core import explain
from repro.hashing import SignRandomProjectionFamily
from repro.storage import HDD, NVME, SSD, DeviceProfile, IOStats
from repro.storage.costmodel import estimate_seconds


@pytest.fixture(scope="module")
def traced():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((2000, 12)) * 5
    pm = PageManager()
    index = C2LSH(c=2, seed=0, page_manager=pm, base_radius=1.0).fit(data)
    return data, index


class TestExplain:
    def test_trace_matches_query_shape(self, traced):
        data, index = traced
        q = data[3] + 0.01
        exp = explain(index, q, k=5)
        result = index.query(q, k=5)
        assert exp.terminated_by == result.stats.terminated_by
        assert len(exp.rounds) == result.stats.rounds
        assert np.array_equal(exp.result_ids, result.ids)

    def test_radii_follow_the_grid(self, traced):
        data, index = traced
        exp = explain(index, data[10], k=3)
        radii = [r.radius for r in exp.rounds]
        assert radii[0] == 1
        for a, b in zip(radii, radii[1:]):
            assert b == a * 2

    def test_candidates_monotone(self, traced):
        data, index = traced
        exp = explain(index, data[10], k=3)
        totals = [r.total_candidates for r in exp.rounds]
        assert totals == sorted(totals)

    def test_io_recorded_per_round(self, traced):
        data, index = traced
        exp = explain(index, data[10], k=3)
        assert all(r.io_reads > 0 for r in exp.rounds)

    def test_render_contains_verdict(self, traced):
        data, index = traced
        text = explain(index, data[10], k=3).render()
        assert "stopped" in text or "fell back" in text
        assert "radius" in text

    def test_print(self, traced, capsys):
        data, index = traced
        explain(index, data[10], k=3).print()
        assert "Query explanation" in capsys.readouterr().out

    def test_validation(self, traced):
        data, index = traced
        with pytest.raises(ValueError):
            explain(index, data[0], k=0)
        with pytest.raises(ValueError):
            explain(index, np.zeros(99), k=1)
        with pytest.raises(RuntimeError):
            explain(C2LSH(seed=0), data[0], k=1)

    def test_non_rehashable_rejected(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((200, 8))
        data /= np.linalg.norm(data, axis=1, keepdims=True)
        index = C2LSH(family=SignRandomProjectionFamily(8),
                      seed=0).fit(data)
        with pytest.raises(ValueError):
            explain(index, data[0], k=1)

    def test_works_without_page_manager(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((300, 8))
        index = C2LSH(c=2, seed=0).fit(data)
        exp = explain(index, data[0], k=2)
        assert all(r.io_reads == 0 for r in exp.rounds)


class TestDeviceProfiles:
    def test_zero_pages_free(self):
        assert HDD.access_time(0) == 0.0

    def test_random_reads_pay_latency_each(self):
        t = HDD.access_time(10, run_length=1)
        assert t == pytest.approx(10 * HDD.latency_s
                                  + 10 * 4096 / HDD.bandwidth_bps)

    def test_sequential_amortizes_latency(self):
        random = HDD.access_time(1000, run_length=1)
        sequential = HDD.access_time(1000, run_length=1000)
        assert sequential < random / 10

    def test_device_ordering(self):
        io = IOStats(reads=500, writes=0)
        assert estimate_seconds(io, HDD) > estimate_seconds(io, SSD) \
            > estimate_seconds(io, NVME)

    def test_writes_priced_sequentially_by_default(self):
        reads_only = estimate_seconds(IOStats(reads=100, writes=0), HDD)
        writes_only = estimate_seconds(IOStats(reads=0, writes=100), HDD)
        assert writes_only < reads_only

    def test_validation(self):
        with pytest.raises(ValueError):
            HDD.access_time(-1)
        with pytest.raises(ValueError):
            HDD.access_time(5, run_length=0)

    def test_custom_profile(self):
        tape = DeviceProfile("tape", latency_s=10.0, bandwidth_bps=1e8)
        assert tape.access_time(1) > 10.0
