"""Tests for the external merge sort substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import PageManager
from repro.storage.extsort import ExternalSorter, external_sort_pages


def make_sorter(memory_pages=2, page_size=64, entry_bytes=8):
    pm = PageManager(page_size=page_size)
    return pm, ExternalSorter(pm, memory_pages=memory_pages,
                              entry_bytes=entry_bytes)


class TestSortedOrder:
    def test_matches_numpy_argsort(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(-100, 100, size=1000)
        _, sorter = make_sorter()
        got = sorter.sorted_order(keys)
        assert np.array_equal(got, np.argsort(keys, kind="stable"))

    def test_stability_with_duplicates(self):
        keys = np.array([5, 1, 5, 1, 5, 1] * 50)
        _, sorter = make_sorter()
        got = sorter.sorted_order(keys)
        assert np.array_equal(got, np.argsort(keys, kind="stable"))

    def test_empty_input(self):
        _, sorter = make_sorter()
        assert sorter.sorted_order(np.empty(0, dtype=np.int64)).size == 0

    def test_single_run_no_merge_passes(self):
        pm, sorter = make_sorter(memory_pages=64, page_size=4096)
        sorter.sorted_order(np.arange(100))
        assert sorter.passes == 0

    def test_large_input_needs_merge_passes(self):
        pm, sorter = make_sorter(memory_pages=2, page_size=64)
        # 8 entries/page at 8 bytes -> runs of 16 entries; 1000 entries
        # -> 63 runs -> multiple fan-in-2... fan_in = max(2, 1) = 2.
        sorter.sorted_order(np.arange(1000)[::-1])
        assert sorter.passes >= 5

    def test_2d_rejected(self):
        _, sorter = make_sorter()
        with pytest.raises(ValueError):
            sorter.sorted_order(np.zeros((2, 2)))

    def test_bad_memory_rejected(self):
        pm = PageManager()
        with pytest.raises(ValueError):
            ExternalSorter(pm, memory_pages=1)

    @given(st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=0, max_value=400),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_argsort(self, seed, n, memory_pages):
        rng = np.random.default_rng(seed)
        keys = rng.integers(-20, 20, size=n)
        _, sorter = make_sorter(memory_pages=memory_pages)
        got = sorter.sorted_order(keys)
        assert np.array_equal(got, np.argsort(keys, kind="stable"))


class TestIOCharging:
    def test_run_formation_charges_one_pass(self):
        pm, sorter = make_sorter(memory_pages=64, page_size=4096)
        pm.reset()
        sorter.sorted_order(np.arange(100))
        pages = pm.pages_for(100, 8)
        assert pm.stats.reads == pages
        assert pm.stats.writes == pages

    def test_each_merge_pass_charges_full_sweep(self):
        pm, sorter = make_sorter(memory_pages=2, page_size=64)
        pm.reset()
        keys = np.arange(1000)[::-1]
        sorter.sorted_order(keys)
        pages = pm.pages_for(1000, 8)
        expected = pages * (1 + sorter.passes)
        assert pm.stats.reads == expected
        assert pm.stats.writes == expected

    def test_analytic_formula_bounds_actual(self):
        """The closed-form estimate matches the structural charge within a
        pass (ceil effects)."""
        pm, sorter = make_sorter(memory_pages=4, page_size=64)
        pm.reset()
        keys = np.random.default_rng(1).integers(0, 100, size=2000)
        sorter.sorted_order(keys)
        actual = pm.stats.total
        estimate = external_sort_pages(2000, pm, memory_pages=4,
                                       entry_bytes=8)
        assert abs(actual - estimate) <= 2 * pm.pages_for(2000, 8)

    def test_analytic_small_input(self):
        pm = PageManager(page_size=4096)
        assert external_sort_pages(100, pm, memory_pages=64,
                                   entry_bytes=8) == 2 * pm.pages_for(100, 8)

    def test_analytic_validation(self):
        pm = PageManager()
        with pytest.raises(ValueError):
            external_sort_pages(10, pm, memory_pages=1)
