"""Tests for the LSH families: p-stable, sign random projection, bit sampling."""

import math

import numpy as np
import pytest

from repro.hashing import (
    BitSamplingFamily,
    PStableFamily,
    SignRandomProjectionFamily,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


class TestPStableFamily:
    def test_hash_shapes(self, rng):
        family = PStableFamily(dim=16, w=2.0)
        funcs = family.sample(5, rng)
        points = rng.standard_normal((30, 16))
        ids = funcs.hash(points)
        assert ids.shape == (30, 5)
        assert ids.dtype == np.int64

    def test_single_point_hash(self, rng):
        family = PStableFamily(dim=16, w=2.0)
        funcs = family.sample(5, rng)
        point = rng.standard_normal(16)
        assert funcs.hash(point).shape == (5,)

    def test_single_equals_batch_row(self, rng):
        family = PStableFamily(dim=8, w=1.5)
        funcs = family.sample(4, rng)
        points = rng.standard_normal((10, 8))
        batch = funcs.hash(points)
        assert np.array_equal(funcs.hash(points[3]), batch[3])

    def test_rehashable(self, rng):
        funcs = PStableFamily(dim=4, w=1.0).sample(2, rng)
        assert funcs.rehashable is True

    def test_hash_is_floor_of_projection(self, rng):
        family = PStableFamily(dim=8, w=2.5)
        funcs = family.sample(3, rng)
        points = rng.standard_normal((20, 8))
        proj = funcs.project(points)
        assert np.array_equal(funcs.hash(points),
                              np.floor(proj / 2.5).astype(np.int64))

    def test_identical_points_always_collide(self, rng):
        funcs = PStableFamily(dim=8, w=1.0).sample(10, rng)
        p = rng.standard_normal(8)
        assert np.array_equal(funcs.hash(p), funcs.hash(p.copy()))

    def test_empirical_collision_probability_matches_theory(self):
        """The heart of LSH: measured collision rate ~ analytic p(s)."""
        rng = np.random.default_rng(0)
        family = PStableFamily(dim=32, w=2.0)
        funcs = family.sample(4000, rng)
        origin = np.zeros(32)
        for s in (0.5, 1.0, 2.0, 4.0):
            other = np.zeros(32)
            other[0] = s
            rate = np.mean(funcs.hash(origin) == funcs.hash(other))
            assert rate == pytest.approx(
                family.collision_probability(s), abs=0.03)

    def test_distance_is_euclidean(self, rng):
        family = PStableFamily(dim=6, w=1.0)
        points = rng.standard_normal((15, 6))
        q = rng.standard_normal(6)
        expected = np.linalg.norm(points - q, axis=1)
        assert np.allclose(family.distance(points, q), expected)

    def test_default_width_minimizes_rho(self):
        family = PStableFamily(dim=10, c=2.0)
        assert family.w > 0

    def test_probabilities_helper(self):
        family = PStableFamily(dim=10, w=2.0)
        p1, p2 = family.probabilities(2.0)
        assert 0 < p2 < p1 < 1

    def test_wrong_dimension_rejected(self, rng):
        funcs = PStableFamily(dim=8, w=1.0).sample(3, rng)
        with pytest.raises(ValueError):
            funcs.hash(rng.standard_normal((5, 9)))

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            PStableFamily(dim=0)
        with pytest.raises(ValueError):
            PStableFamily(dim=4, w=-1.0)

    def test_invalid_m_rejected(self, rng):
        with pytest.raises(ValueError):
            PStableFamily(dim=4, w=1.0).sample(0, rng)

    def test_seeded_samples_are_reproducible(self):
        family = PStableFamily(dim=8, w=1.0)
        a = family.sample(3, np.random.default_rng(5))
        b = family.sample(3, np.random.default_rng(5))
        p = np.random.default_rng(1).standard_normal((4, 8))
        assert np.array_equal(a.hash(p), b.hash(p))


class TestSignRandomProjectionFamily:
    def test_hash_values_are_binary(self, rng):
        funcs = SignRandomProjectionFamily(dim=12).sample(20, rng)
        ids = funcs.hash(rng.standard_normal((50, 12)))
        assert set(np.unique(ids)) <= {0, 1}

    def test_not_rehashable(self, rng):
        assert SignRandomProjectionFamily(dim=4).sample(2, rng).rehashable \
            is False

    def test_antipodal_points_never_collide(self, rng):
        funcs = SignRandomProjectionFamily(dim=8).sample(50, rng)
        p = rng.standard_normal(8)
        # sign(a.p) != sign(-a.p) unless the projection is exactly zero.
        assert not np.any(funcs.hash(p) == funcs.hash(-p))

    def test_empirical_rate_matches_angle(self):
        rng = np.random.default_rng(1)
        family = SignRandomProjectionFamily(dim=16)
        funcs = family.sample(6000, rng)
        a = np.zeros(16)
        a[0] = 1.0
        b = np.zeros(16)
        theta = math.pi / 3
        b[0], b[1] = math.cos(theta), math.sin(theta)
        rate = np.mean(funcs.hash(a) == funcs.hash(b))
        assert rate == pytest.approx(1 - theta / math.pi, abs=0.03)

    def test_distance_is_angle(self):
        family = SignRandomProjectionFamily(dim=3)
        points = np.array([[1.0, 0, 0], [0, 1.0, 0], [-1.0, 0, 0]])
        q = np.array([1.0, 0, 0])
        angles = family.distance(points, q)
        assert np.allclose(angles, [0.0, math.pi / 2, math.pi])

    def test_zero_vector_distance_rejected(self):
        family = SignRandomProjectionFamily(dim=3)
        with pytest.raises(ValueError):
            family.distance(np.zeros((2, 3)), np.array([1.0, 0, 0]))

    def test_collision_probability_bounds(self):
        family = SignRandomProjectionFamily(dim=5)
        assert family.collision_probability(0.0) == 1.0
        assert family.collision_probability(math.pi) == pytest.approx(0.0)


class TestBitSamplingFamily:
    def test_hash_samples_coordinates(self, rng):
        family = BitSamplingFamily(dim=10)
        funcs = family.sample(6, rng)
        points = rng.integers(0, 2, size=(20, 10))
        ids = funcs.hash(points)
        assert ids.shape == (20, 6)
        assert set(np.unique(ids)) <= {0, 1}

    def test_identical_points_collide_everywhere(self, rng):
        funcs = BitSamplingFamily(dim=10).sample(30, rng)
        p = rng.integers(0, 2, size=10)
        assert np.array_equal(funcs.hash(p), funcs.hash(p.copy()))

    def test_empirical_rate_matches_hamming(self):
        rng = np.random.default_rng(2)
        family = BitSamplingFamily(dim=64)
        funcs = family.sample(8000, rng)
        a = np.zeros(64, dtype=np.int64)
        b = a.copy()
        b[:16] = 1  # Hamming distance 16
        rate = np.mean(funcs.hash(a) == funcs.hash(b))
        assert rate == pytest.approx(1 - 16 / 64, abs=0.03)

    def test_distance_is_hamming(self):
        family = BitSamplingFamily(dim=5)
        points = np.array([[0, 0, 0, 0, 0], [1, 1, 0, 0, 0]])
        q = np.zeros(5, dtype=np.int64)
        assert np.array_equal(family.distance(points, q), [0.0, 2.0])

    def test_wrong_dim_rejected(self, rng):
        funcs = BitSamplingFamily(dim=8).sample(3, rng)
        with pytest.raises(ValueError):
            funcs.hash(np.zeros((4, 9), dtype=np.int64))

    def test_single_point(self, rng):
        funcs = BitSamplingFamily(dim=8).sample(3, rng)
        assert funcs.hash(np.zeros(8, dtype=np.int64)).shape == (3,)
