"""Tests for synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import generators as gen


class TestAsRng:
    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert gen.as_rng(rng) is rng

    def test_seed_creates_generator(self):
        assert isinstance(gen.as_rng(5), np.random.Generator)

    def test_none_creates_generator(self):
        assert isinstance(gen.as_rng(None), np.random.Generator)


class TestGaussianClusters:
    def test_shape(self):
        data = gen.gaussian_clusters(100, 8, seed=0)
        assert data.shape == (100, 8)

    def test_reproducible(self):
        a = gen.gaussian_clusters(50, 4, seed=1)
        b = gen.gaussian_clusters(50, 4, seed=1)
        assert np.array_equal(a, b)

    def test_clusters_are_separated(self):
        """With tight clusters and wide spread, points split into groups."""
        data = gen.gaussian_clusters(200, 4, n_clusters=2, cluster_std=0.1,
                                     spread=100.0, seed=0)
        # NN distance within a tight cluster is far below the spread.
        d01 = np.linalg.norm(data[0] - data, axis=1)
        d01 = d01[d01 > 0]
        assert d01.min() < 2.0

    def test_anisotropy_shrinks_later_dims(self):
        data = gen.gaussian_clusters(2000, 10, n_clusters=1, spread=0.0,
                                     anisotropy=0.4, seed=0)
        assert data[:, 9].std() < data[:, 0].std()

    def test_validation(self):
        with pytest.raises(ValueError):
            gen.gaussian_clusters(0, 4)
        with pytest.raises(ValueError):
            gen.gaussian_clusters(10, 4, n_clusters=0)
        with pytest.raises(ValueError):
            gen.gaussian_clusters(10, 4, anisotropy=1.0)


class TestCorrelatedGaussian:
    def test_shape_and_reproducibility(self):
        a = gen.correlated_gaussian(100, 6, seed=2)
        assert a.shape == (100, 6)
        assert np.array_equal(a, gen.correlated_gaussian(100, 6, seed=2))

    def test_adjacent_columns_correlate(self):
        data = gen.correlated_gaussian(5000, 4, decay=0.9, seed=0)
        corr = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert corr > 0.8

    def test_zero_decay_uncorrelated(self):
        data = gen.correlated_gaussian(5000, 4, decay=0.0, seed=0)
        corr = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert abs(corr) < 0.1

    def test_unit_marginal_variance(self):
        data = gen.correlated_gaussian(20000, 3, decay=0.8, seed=0)
        assert data[:, 2].std() == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            gen.correlated_gaussian(10, 3, decay=1.0)


class TestUniformHypercube:
    def test_bounds(self):
        data = gen.uniform_hypercube(500, 5, low=-2, high=3, seed=0)
        assert data.min() >= -2
        assert data.max() <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            gen.uniform_hypercube(10, 3, low=1.0, high=1.0)


class TestHistogramVectors:
    def test_rows_sum_to_scale(self):
        data = gen.histogram_vectors(50, 8, scale=100.0, seed=0)
        assert np.allclose(data.sum(axis=1), 100.0)

    def test_nonnegative(self):
        data = gen.histogram_vectors(50, 8, seed=0)
        assert np.all(data >= 0)

    def test_small_concentration_is_peaky(self):
        peaky = gen.histogram_vectors(200, 16, concentration=0.05, seed=0)
        flat = gen.histogram_vectors(200, 16, concentration=50.0, seed=0)
        assert peaky.max(axis=1).mean() > flat.max(axis=1).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            gen.histogram_vectors(10, 4, concentration=0.0)


class TestSparseNonnegative:
    def test_density_respected(self):
        data = gen.sparse_nonnegative(400, 100, density=0.05, seed=0)
        observed = np.count_nonzero(data) / data.size
        assert observed == pytest.approx(0.05, abs=0.01)

    def test_nonnegative(self):
        assert np.all(gen.sparse_nonnegative(50, 20, seed=0) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            gen.sparse_nonnegative(10, 5, density=0.0)
        with pytest.raises(ValueError):
            gen.sparse_nonnegative(10, 5, density=1.5)


class TestPlantedQueries:
    def test_queries_are_near_anchors(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((100, 6)) * 100
        queries, anchors = gen.planted_queries(data, 10, noise_std=0.01,
                                               seed=1)
        dists = np.linalg.norm(queries - data[anchors], axis=1)
        assert np.all(dists < 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            gen.planted_queries(np.zeros((5, 2)), 0)
        with pytest.raises(ValueError):
            gen.planted_queries(np.zeros(5), 1)


class TestSplitQueries:
    def test_partition_sizes(self):
        data = np.arange(40, dtype=np.float64).reshape(20, 2)
        rest, queries = gen.split_queries(data, 5, seed=0)
        assert rest.shape == (15, 2)
        assert queries.shape == (5, 2)

    def test_disjoint(self):
        data = np.arange(40, dtype=np.float64).reshape(20, 2)
        rest, queries = gen.split_queries(data, 5, seed=0)
        rest_set = {tuple(r) for r in rest}
        q_set = {tuple(q) for q in queries}
        assert not (rest_set & q_set)
        assert len(rest_set | q_set) == 20

    def test_validation(self):
        data = np.zeros((10, 2))
        with pytest.raises(ValueError):
            gen.split_queries(data, 10)
        with pytest.raises(ValueError):
            gen.split_queries(data, 0)
