"""Statistical tests of the paper's probabilistic guarantees.

These verify the *theorems*, not just the code: with parameters from the
Hoeffding machinery,

* **P1**: a point at distance <= R collides with the query in >= l of the
  m tables with probability >= 1 - delta;
* **P2**: the expected number of far points (> cR) reaching l collisions
  is <= beta*n/2;
* the end-to-end c^2 bound follows.

Each test repeats the experiment across independent hash draws and checks
the empirical rate against the bound with sampling slack. Seeds are fixed,
so the tests are deterministic.
"""

import numpy as np
import pytest

from repro import C2LSH
from repro.core.params import design_params
from repro.data import exact_knn
from repro.hashing import PStableFamily

TRIALS = 60


def _collision_count(family, m, seed, a, b):
    funcs = family.sample(m, np.random.default_rng(seed))
    return int(np.count_nonzero(funcs.hash(a) == funcs.hash(b)))


class TestP1NoFalseNegatives:
    def test_near_point_is_frequent_with_high_probability(self):
        """P[#collisions >= l] >= 1 - delta for a point at distance R."""
        dim, delta = 24, 0.05
        family = PStableFamily(dim, c=2)
        params = design_params(50_000, family, c=2, delta=delta)
        a = np.zeros(dim)
        b = np.zeros(dim)
        b[0] = 1.0  # exactly the design distance R = 1
        hits = sum(
            _collision_count(family, params.m, seed, a, b) >= params.l
            for seed in range(TRIALS)
        )
        # Binomial slack: allow ~2 sigma below the bound.
        slack = 2 * np.sqrt(TRIALS * delta * (1 - delta))
        assert hits >= TRIALS * (1 - delta) - slack

    def test_closer_points_are_even_safer(self):
        dim = 24
        family = PStableFamily(dim, c=2)
        params = design_params(50_000, family, c=2, delta=0.05)
        a = np.zeros(dim)
        b = np.zeros(dim)
        b[0] = 0.3  # well inside the design radius
        hits = sum(
            _collision_count(family, params.m, seed, a, b) >= params.l
            for seed in range(TRIALS)
        )
        assert hits == TRIALS


class TestP2FewFalsePositives:
    def test_far_point_rarely_frequent(self):
        """A point just past cR reaches l collisions with probability far
        below the near-point rate (the Hoeffding bound gives beta/2 per
        point; the empirical rate must stay under a loose multiple)."""
        dim = 24
        family = PStableFamily(dim, c=2)
        params = design_params(10_000, family, c=2, delta=0.05)
        a = np.zeros(dim)
        b = np.zeros(dim)
        b[0] = 2.5  # beyond cR = 2
        hits = sum(
            _collision_count(family, params.m, seed, a, b) >= params.l
            for seed in range(TRIALS)
        )
        assert hits <= max(2, TRIALS * 0.1)

    def test_very_far_point_never_frequent(self):
        dim = 24
        family = PStableFamily(dim, c=2)
        params = design_params(10_000, family, c=2, delta=0.05)
        a = np.zeros(dim)
        b = np.zeros(dim)
        b[0] = 8.0
        hits = sum(
            _collision_count(family, params.m, seed, a, b) >= params.l
            for seed in range(TRIALS)
        )
        assert hits == 0


class TestEndToEndGuarantee:
    def test_c2_ratio_bound_across_seeds(self):
        """Across hash draws, the top-1 answer is within c^2 of exact with
        empirical frequency well above the guaranteed 1/2 - delta."""
        rng = np.random.default_rng(0)
        data = rng.standard_normal((1500, 16)) * 3
        queries = rng.standard_normal((5, 16)) * 3
        _, true_dists = exact_knn(data, queries, 1)
        successes = 0
        trials = 0
        for seed in range(12):
            index = C2LSH(c=2, seed=seed).fit(data)
            for q, true_d in zip(queries, true_dists[:, 0]):
                got = index.query(q, k=1).distances[0]
                trials += 1
                if got <= 4.0 * true_d + 1e-9:
                    successes += 1
        assert successes / trials >= 0.49  # bound is 1/2 - delta

    def test_success_rate_far_exceeds_bound_in_practice(self):
        """The paper observes ratios near 1 — the bound is loose."""
        rng = np.random.default_rng(1)
        data = rng.standard_normal((1500, 16)) * 3
        q = rng.standard_normal(16) * 3
        _, true_dists = exact_knn(data, q, 1)
        exact_hits = 0
        for seed in range(10):
            index = C2LSH(c=2, seed=seed).fit(data)
            got = index.query(q, k=1).distances[0]
            if got <= 1.05 * true_dists[0] + 1e-9:
                exact_hits += 1
        assert exact_hits >= 8
