"""Smoke tests for the experiment harness CLI.

Each experiment runs once at miniature scale (n ~ 1000, few queries) to
prove the end-to-end plumbing; the real runs live in benchmarks/.
"""

import pytest

from repro.eval.harness import EXPERIMENTS, build_parser, main

FAST_ARGS = [
    "--datasets", "color",
    "--scale", "0.001",
    "--queries", "5",
    "--ks", "1", "5",
    "--lsb-trees", "3",
    "--e2lsh-K", "4",
    "--e2lsh-L", "8",
    "--methods", "c2lsh", "linear",
]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["vs-k"])
        assert args.experiment == "vs-k"
        assert args.scale == 0.1
        assert args.c == 2

    def test_all_experiments_are_choices(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            assert parser.parse_args([name]).experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["vs-k", "--datasets", "imagenet"])


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_experiment_smoke(experiment, capsys):
    assert main([experiment] + FAST_ARGS) == 0
    out = capsys.readouterr().out
    assert "|" in out  # a table was printed


def test_compare_needs_two_methods(capsys):
    from repro.eval.harness import main as harness_main
    args = [a for a in FAST_ARGS]
    with pytest.raises(SystemExit):
        harness_main(["compare"] + args[:-3] + ["--methods", "c2lsh"])


def test_csv_export(tmp_path, capsys):
    assert main(["table-params"] + FAST_ARGS
                + ["--out-dir", str(tmp_path)]) == 0
    files = list(tmp_path.glob("*.csv"))
    assert len(files) == 1
    assert files[0].read_text().count("\n") >= 2
