"""Content assertions for the harness experiment tables.

The smoke tests prove each experiment runs; these check the tables carry
exactly the rows the corresponding paper artifact needs (every method at
every k, every layout, both modes, ...), so a silent coverage regression
in an experiment cannot pass.
"""

import pytest

from repro.eval import harness


def make_args(**overrides):
    defaults = dict(
        experiment="vs-k", datasets=["color"], scale=0.002, queries=5,
        ks=[1, 5], c=2, delta=0.01, seed=0,
        methods=["c2lsh", "linear"], lsb_trees=2, e2lsh_K=4, e2lsh_L=4,
        mp_probes=4, out_dir=None,
    )
    defaults.update(overrides)
    return type("Args", (), defaults)()


class TestTableContents:
    def test_vs_k_covers_every_method_and_k(self):
        table = harness.exp_vs_k(make_args())
        cells = {(row[1], row[2]) for row in table.rows}
        for method in ("c2lsh", "linear"):
            for k in (1, 5):
                assert (method, k) in cells

    def test_params_table_has_both_ratios(self):
        table = harness.exp_table_params(make_args())
        ratios = {row[3] for row in table.rows}
        assert ratios == {2, 3}

    def test_index_table_has_theory_rows(self):
        table = harness.exp_table_index(make_args())
        methods = {row[1] for row in table.rows}
        assert {"e2lsh(theory)", "lsb(theory)"} <= methods

    def test_layout_table_has_three_layouts(self):
        table = harness.exp_layout(make_args())
        layouts = {row[1] for row in table.rows}
        assert layouts == {"scattered", "id", "zorder"}

    def test_rehash_table_has_both_modes(self):
        table = harness.exp_ablation_rehash(make_args())
        modes = {row[1] for row in table.rows}
        assert modes == {"incremental", "recount"}

    def test_alpha_table_has_three_positions(self):
        table = harness.exp_ablation_alpha(make_args())
        positions = {row[2] for row in table.rows}
        assert positions == {"near-p2", "optimal", "near-p1"}

    def test_termination_table_has_three_variants(self):
        table = harness.exp_termination(make_args())
        variants = {row[1] for row in table.rows}
        assert variants == {"T1+T2", "T2-only", "T1-only"}

    def test_effect_c_covers_both_schemes(self):
        table = harness.exp_effect_c(make_args())
        pairs = {(row[1], row[2]) for row in table.rows}
        assert {("c2lsh", 2), ("c2lsh", 3), ("qalsh", 2),
                ("qalsh", 3)} <= pairs

    def test_tradeoff_sweeps_five_budgets(self):
        table = harness.exp_tradeoff(make_args())
        budgets = {row[1] for row in table.rows}
        assert budgets == {25, 50, 100, 200, 400}

    def test_compare_reports_both_metrics(self):
        table = harness.exp_compare(make_args(methods=["c2lsh", "linear"]))
        metrics = {row[1] for row in table.rows}
        assert metrics == {"recall", "ratio"}

    def test_csv_round_trip(self, tmp_path):
        table = harness.exp_table_params(make_args(out_dir=str(tmp_path)))
        csv_file = tmp_path / "t1_params.csv"
        assert csv_file.exists()
        lines = csv_file.read_text().strip().splitlines()
        assert len(lines) == len(table.rows) + 1  # header + rows
