"""Tests for SortedHashTable, the bucket-file layout of one hash table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import PageManager, SortedHashTable


class TestConstruction:
    def test_build_charges_write_pages(self):
        pm = PageManager(page_size=4096)
        SortedHashTable(np.arange(1000), page_manager=pm, entry_bytes=12)
        assert pm.stats.writes == pm.pages_for(1000, 12)

    def test_memory_mode_charges_nothing(self):
        table = SortedHashTable(np.arange(10))
        assert len(table) == 10

    def test_min_max_buckets(self):
        table = SortedHashTable(np.array([5, -3, 9, 0]))
        assert table.min_bucket == -3
        assert table.max_bucket == 9

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            SortedHashTable(np.zeros((3, 3)))


class TestIntervalPositions:
    def test_matches_linear_filter(self):
        ids = np.array([4, 1, 4, 2, 9, 4, -1])
        table = SortedHashTable(ids)
        lo, hi = table.interval_positions(2, 5)
        members = set(table.read_positions(lo, hi, charge=False).tolist())
        expected = {i for i, b in enumerate(ids) if 2 <= b < 5}
        assert members == expected

    def test_empty_interval(self):
        table = SortedHashTable(np.array([1, 2, 3]))
        lo, hi = table.interval_positions(10, 12)
        assert lo == hi

    def test_reversed_bounds_rejected(self):
        table = SortedHashTable(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            table.interval_positions(5, 2)

    @given(st.lists(st.integers(min_value=-20, max_value=20), min_size=1,
                    max_size=60),
           st.integers(min_value=-25, max_value=25),
           st.integers(min_value=0, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_property_interval_equals_filter(self, ids, lo_id, width):
        ids = np.array(ids)
        table = SortedHashTable(ids)
        lo, hi = table.interval_positions(lo_id, lo_id + width)
        got = sorted(table.read_positions(lo, hi, charge=False).tolist())
        expected = sorted(
            i for i, b in enumerate(ids) if lo_id <= b < lo_id + width
        )
        assert got == expected


class TestReadCharging:
    def test_scan_charges_bucket_formula(self):
        pm = PageManager(page_size=4096)
        table = SortedHashTable(np.zeros(1000, dtype=np.int64),
                                page_manager=pm, entry_bytes=12)
        pm.reset()
        table.scan_bucket_range(0, 1)
        assert pm.stats.reads == pm.pages_for(1000, 12)

    def test_empty_scan_is_free(self):
        pm = PageManager()
        table = SortedHashTable(np.zeros(10, dtype=np.int64),
                                page_manager=pm)
        pm.reset()
        table.scan_bucket_range(5, 6)
        assert pm.stats.reads == 0

    def test_charge_flag_suppresses_io(self):
        pm = PageManager()
        table = SortedHashTable(np.zeros(10, dtype=np.int64),
                                page_manager=pm)
        pm.reset()
        table.read_positions(0, 10, charge=False)
        assert pm.stats.reads == 0

    def test_out_of_range_positions_rejected(self):
        table = SortedHashTable(np.arange(5))
        with pytest.raises(IndexError):
            table.read_positions(0, 6)
        with pytest.raises(IndexError):
            table.read_positions(-1, 3)

    def test_storage_pages(self):
        pm = PageManager(page_size=4096)
        table = SortedHashTable(np.arange(1000), page_manager=pm,
                                entry_bytes=12)
        assert table.storage_pages() == pm.pages_for(1000, 12)

    def test_storage_pages_without_manager_rejected(self):
        table = SortedHashTable(np.arange(5))
        with pytest.raises(ValueError):
            table.storage_pages()
