"""Cross-module integration tests: the full evaluation pipeline.

These assert the *relationships* the paper's experiments rely on — exactness
of the baseline, the index-size ordering, the accuracy ordering — on one
shared small dataset.
"""

import numpy as np
import pytest

from repro import C2LSH, E2LSH, LinearScan, LSBForest, PageManager, QALSH
from repro.data import exact_knn, gaussian_clusters, split_queries
from repro.eval import evaluate_results

K = 10


@pytest.fixture(scope="module")
def bench():
    raw = gaussian_clusters(2020, dim=24, n_clusters=10, cluster_std=1.0,
                            spread=10.0, seed=11)
    data, queries = split_queries(raw, 20, seed=12)
    true_ids, true_dists = exact_knn(data, queries, K)
    return data, queries, true_ids, true_dists


def summarize(index, bench):
    data, queries, true_ids, true_dists = bench
    results = index.query_batch(queries, k=K)
    return evaluate_results(results, true_ids, true_dists, K)


class TestPipeline:
    def test_linear_scan_is_the_accuracy_floor(self, bench):
        data = bench[0]
        summary = summarize(LinearScan().fit(data), bench)
        assert summary.recall == 1.0
        assert summary.ratio == pytest.approx(1.0)

    def test_c2lsh_beats_lsb_on_ratio(self, bench):
        """The paper's headline accuracy claim, at matched index budgets."""
        data = bench[0]
        c2lsh = summarize(C2LSH(c=2, seed=0).fit(data), bench)
        lsb = summarize(LSBForest(n_trees=8, seed=0).fit(data), bench)
        assert c2lsh.ratio <= lsb.ratio + 0.02

    def test_c2lsh_checks_fewer_candidates_than_linear(self, bench):
        data = bench[0]
        summary = summarize(C2LSH(c=2, seed=0).fit(data), bench)
        assert summary.candidates < data.shape[0]

    def test_all_approximate_methods_reach_half_recall(self, bench):
        data = bench[0]
        for index in (
            C2LSH(c=2, seed=0),
            QALSH(c=2, seed=0),
            E2LSH(K=6, L=32, seed=0),
            LSBForest(n_trees=8, seed=0),
        ):
            summary = summarize(index.fit(data), bench)
            assert summary.recall >= 0.5, type(index).__name__

    def test_index_size_ordering_at_paper_scale(self):
        """C2LSH stores m ~ log n single tables; E2LSH needs L ~ n^rho
        compound tables and LSB-forest sqrt(dn/B) trees. At the paper's
        million-point scale the ordering C2LSH << {E2LSH, LSB} must hold
        (each table/tree holds one entry per point, so comparing table
        counts compares index sizes)."""
        from repro.core import design_params
        from repro.hashing import PStableFamily

        n, dim = 1_000_000, 50
        m = design_params(n, PStableFamily(dim, c=2), c=2).m
        _, L_e2 = E2LSH.theoretical_parameters(n)
        _, L_lsb = LSBForest.theoretical_parameters(n, dim)
        assert m < L_e2
        assert m < L_lsb * dim  # LSB leaves + inner nodes per tree

    def test_io_accounting_is_consistent(self, bench):
        """Sum of per-query deltas equals the manager's total."""
        data, queries, _, _ = bench
        pm = PageManager()
        index = C2LSH(c=2, seed=0, page_manager=pm).fit(data)
        before = pm.stats.reads
        results = index.query_batch(queries, k=K)
        total_delta = sum(r.stats.io_reads for r in results)
        assert pm.stats.reads - before == total_delta

    def test_methods_are_independent(self, bench):
        """Building one index never perturbs another's answers."""
        data, queries, _, _ = bench
        a = C2LSH(c=2, seed=0).fit(data)
        first = a.query(queries[0], k=K).ids.copy()
        LSBForest(n_trees=4, seed=0).fit(data)
        E2LSH(K=4, L=8, seed=0).fit(data)
        assert np.array_equal(a.query(queries[0], k=K).ids, first)

    def test_larger_c_reduces_work(self, bench):
        data = bench[0]
        c2 = summarize(C2LSH(c=2, seed=0).fit(data), bench)
        c3 = summarize(C2LSH(c=3, seed=0).fit(data), bench)
        # c=3 needs fewer hash functions (wider gap) => less scanning.
        m2 = C2LSH(c=2, seed=0).fit(data).params.m
        m3 = C2LSH(c=3, seed=0).fit(data).params.m
        assert m3 < m2
        assert c3.scanned_entries < c2.scanned_entries * 1.5

    def test_recount_mode_scans_more(self, bench):
        data, queries, _, _ = bench
        pm_inc, pm_rec = PageManager(), PageManager()
        inc = C2LSH(c=2, seed=0, incremental=True,
                    page_manager=pm_inc).fit(data)
        rec = C2LSH(c=2, seed=0, incremental=False,
                    page_manager=pm_rec).fit(data)
        io_inc = sum(inc.query(q, k=K).stats.io_reads for q in queries[:5])
        io_rec = sum(rec.query(q, k=K).stats.io_reads for q in queries[:5])
        assert io_rec >= io_inc
