"""Property-based invariants of the whole C2LSH stack under random inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import C2LSH, QALSH
from repro.data import exact_knn


def make_data(seed, n, dim):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dim)) * rng.uniform(0.5, 20.0)


@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=20, max_value=150),
       st.integers(min_value=2, max_value=12),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=15, deadline=None)
def test_c2lsh_results_never_beat_exact(seed, n, dim, k):
    """Rank-i returned distance >= rank-i true distance, for every i."""
    data = make_data(seed, n, dim)
    query = np.random.default_rng(seed + 1).standard_normal(dim)
    index = C2LSH(c=2, seed=seed).fit(data)
    result = index.query(query, k=k)
    _, true_dists = exact_knn(data, query, k)
    assert len(result) == k  # k <= 5 << n, fallback guarantees fill
    assert np.all(result.distances >= true_dists[:len(result)] - 1e-9)


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=10, deadline=None)
def test_c2lsh_ids_unique_and_in_range(seed):
    data = make_data(seed, 80, 6)
    query = np.random.default_rng(seed + 1).standard_normal(6)
    result = C2LSH(c=2, seed=seed).fit(data).query(query, k=8)
    assert len(set(result.ids.tolist())) == len(result)
    assert np.all((result.ids >= 0) & (result.ids < 80))


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=10, deadline=None)
def test_qalsh_results_never_beat_exact(seed):
    data = make_data(seed, 100, 8)
    query = np.random.default_rng(seed + 1).standard_normal(8)
    result = QALSH(c=2, seed=seed).fit(data).query(query, k=3)
    _, true_dists = exact_knn(data, query, 3)
    assert np.all(result.distances >= true_dists[:len(result)] - 1e-9)


@given(st.integers(min_value=0, max_value=2**31),
       st.sampled_from([2, 3]))
@settings(max_examples=10, deadline=None)
def test_c2lsh_deterministic_under_seed(seed, c):
    data = make_data(seed, 60, 5)
    query = np.random.default_rng(seed + 1).standard_normal(5)
    a = C2LSH(c=c, seed=seed).fit(data).query(query, k=4)
    b = C2LSH(c=c, seed=seed).fit(data).query(query, k=4)
    assert np.array_equal(a.ids, b.ids)
    assert np.allclose(a.distances, b.distances)


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=10, deadline=None)
def test_candidate_count_bounded_by_t2_plus_round(seed):
    """T2 stops verification within one round of the budget filling."""
    data = make_data(seed, 120, 6)
    query = np.random.default_rng(seed + 1).standard_normal(6)
    index = C2LSH(c=2, seed=seed).fit(data)
    result = index.query(query, k=2)
    assert result.stats.candidates <= 120
    assert result.stats.candidates >= len(result)
