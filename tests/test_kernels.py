"""Kernel-tier tests: backend selection, tier equivalence, adversarial shapes.

The contract under test (see :mod:`repro.kernels`): every kernel's result
is fully specified — integer kernels as exact comparisons/additions, the
distance kernels as a fixed balanced fold tree — so the pure-numpy tier,
the numba tier (when installed), and a brute-force oracle must agree **bit
for bit** on ids, counts, positions and float64 distances.

The Hypothesis properties drive each available tier against the oracle
over adversarial shapes: zero-row tables, single-query batches,
duplicate-heavy ties, empty active sets / segment lists, and
non-contiguous views (the shape shared_memory shard slices arrive in).
When numba is not installed, the numba-side parametrizations skip and the
selection tests simulate its presence with a booby-trapped stub.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import KernelBackendError, backend
from repro.kernels import _numpy as numpy_tier

try:
    from repro.kernels import _numba as numba_tier
except ImportError:
    numba_tier = None

TIERS = [pytest.param(numpy_tier, id="numpy")]
if numba_tier is not None:
    TIERS.append(pytest.param(numba_tier, id="numba"))

needs_numba = pytest.mark.skipif(numba_tier is None,
                                 reason="numba not installed")


@pytest.fixture
def restore_backend():
    """Snapshot and restore the global tier selection around a test."""
    saved_active, saved_info = backend._active, dict(backend._info)
    yield
    backend._active, backend._info = saved_active, saved_info


def _use(tier):
    """Point the dispatch layer at ``tier`` (restored by restore_backend)."""
    backend._active = tier
    backend._info = {"backend": "numpy" if tier is numpy_tier else "numba",
                     "numba_version": None}


# --------------------------------------------------------------------------
# backend selection
# --------------------------------------------------------------------------

class TestBackendSelection:

    def test_active_backend_shape(self):
        info = kernels.active_backend()
        assert set(info) == {"backend", "numba_version"}
        assert info["backend"] in ("numpy", "numba")
        assert kernels.backend_name() == info["backend"]

    def test_select_numpy(self, restore_backend):
        mod = kernels.select("numpy")
        assert mod is numpy_tier
        assert kernels.active_backend() == {"backend": "numpy",
                                            "numba_version": None}

    def test_invalid_name_rejected(self, restore_backend):
        with pytest.raises(KernelBackendError, match="unknown kernel"):
            kernels.select("cython")

    def test_invalid_env_value_rejected(self, restore_backend, monkeypatch):
        monkeypatch.setenv(backend.ENV_VAR, "fast")
        with pytest.raises(KernelBackendError, match="unknown kernel"):
            kernels.select(None)

    def test_forced_numpy_bypasses_numba_entirely(self, restore_backend,
                                                  monkeypatch):
        """REPRO_KERNELS=numpy must never import numba, even if installed."""

        class _Trap:
            def __getattr__(self, name):
                raise AssertionError(
                    "numba was touched despite REPRO_KERNELS=numpy")

        monkeypatch.setitem(sys.modules, "numba", _Trap())
        monkeypatch.setenv(backend.ENV_VAR, "numpy")
        mod = kernels.select(None)
        assert mod is numpy_tier
        assert kernels.active_backend()["backend"] == "numpy"
        # The dispatch layer really runs the numpy tier end to end.
        assert kernels.warmup()["backend"] == "numpy"

    def test_forced_numba_missing_raises(self, restore_backend, monkeypatch):
        monkeypatch.setitem(sys.modules, "numba", None)  # import -> error
        monkeypatch.setenv(backend.ENV_VAR, "numba")
        with pytest.raises(KernelBackendError,
                           match="numba kernel tier .* unavailable"):
            kernels.select(None)

    def test_auto_without_numba_falls_back(self, restore_backend,
                                           monkeypatch):
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.delenv(backend.ENV_VAR, raising=False)
        assert kernels.reselect() is numpy_tier
        assert kernels.active_backend()["backend"] == "numpy"

    @needs_numba
    def test_auto_with_numba_selects_numba(self, restore_backend,
                                           monkeypatch):
        monkeypatch.delenv(backend.ENV_VAR, raising=False)
        assert kernels.reselect() is numba_tier
        info = kernels.active_backend()
        assert info["backend"] == "numba"
        assert info["numba_version"]

    @needs_numba
    def test_warmup_covers_numba_tier(self, restore_backend):
        _use(numba_tier)
        assert kernels.warmup()["backend"] == "numba"


# --------------------------------------------------------------------------
# oracles
# --------------------------------------------------------------------------

def _oracle_searchsorted(rows, targets, side):
    flat = targets.reshape(-1, rows.shape[0])
    out = np.empty(flat.shape, dtype=np.int64)
    for b in range(flat.shape[0]):
        for j in range(rows.shape[0]):
            out[b, j] = np.searchsorted(rows[j], flat[b, j], side=side)
    return out.reshape(targets.shape)


def _oracle_dense(rank, lo, hi):
    A, m = lo.shape
    n = rank.shape[1]
    out = np.zeros((A, n), dtype=np.int32)
    for i in range(A):
        for j in range(m):
            for o in range(n):
                if lo[i, j] <= rank[j, o] < hi[i, j]:
                    out[i, o] += 1
    return out


def _oracle_sparse(order, seg_q, seg_t, seg_lo, lengths, A):
    out = np.zeros((A, order.shape[1]), dtype=np.int32)
    for q, t, lo, ln in zip(seg_q, seg_t, seg_lo, lengths):
        for p in range(lo, lo + ln):
            out[q, order[t, p]] += 1
    return out


# --------------------------------------------------------------------------
# shared strategies
# --------------------------------------------------------------------------

tables = st.tuples(st.integers(1, 5), st.integers(0, 40),
                   st.integers(0, 60))


# --------------------------------------------------------------------------
# per-tier properties vs the oracle (bit-exact)
# --------------------------------------------------------------------------

@pytest.mark.parametrize("tier", TIERS)
class TestTierMatchesOracle:

    @settings(max_examples=60, deadline=None)
    @given(dims=tables, side=st.sampled_from(["left", "right"]),
           seed=st.integers(0, 2**32 - 1))
    def test_row_searchsorted(self, tier, dims, side, seed):
        m, n, q = dims
        rng = np.random.default_rng(seed)
        # Duplicate-heavy: ids drawn from a tiny alphabet force tie cases.
        rows = np.sort(rng.integers(0, max(1, n // 3 + 1), (m, n)), axis=1)
        targets = rng.integers(-2, max(2, n // 3 + 2), (q, m))
        got = tier.row_searchsorted(rows, targets, side == "left") \
            if n else np.zeros((q, m), np.int64)
        assert got.dtype == np.int64
        assert np.array_equal(got, _oracle_searchsorted(rows, targets, side))

    @settings(max_examples=60, deadline=None)
    @given(dims=tables, A=st.integers(0, 5), seed=st.integers(0, 2**32 - 1))
    def test_dense_counts(self, tier, dims, A, seed):
        m, n, _ = dims
        rng = np.random.default_rng(seed)
        rank = np.stack([rng.permutation(n) for _ in range(m)]) \
            .astype(np.int32).reshape(m, n)
        lo = rng.integers(0, n + 1, (A, m))
        hi = np.minimum(lo + rng.integers(0, n + 1, (A, m)), n)
        got = tier.dense_counts(rank, lo, hi)
        assert got.dtype == np.int32
        assert np.array_equal(got, _oracle_dense(rank, lo, hi))

    @settings(max_examples=60, deadline=None)
    @given(dims=tables, A=st.integers(1, 5), n_seg=st.integers(0, 12),
           seed=st.integers(0, 2**32 - 1))
    def test_sparse_counts(self, tier, dims, A, n_seg, seed):
        m, n, _ = dims
        if n == 0:
            n_seg = 0  # no coverable positions
        rng = np.random.default_rng(seed)
        order = np.stack([rng.permutation(max(n, 1)) for _ in range(m)]) \
            .astype(np.int64)[:, :n].reshape(m, n)
        seg_q = rng.integers(0, A, n_seg)
        seg_t = rng.integers(0, m, n_seg)
        seg_lo = rng.integers(0, max(n, 1), n_seg)
        lengths = rng.integers(0, n - seg_lo + 1) if n_seg else \
            np.zeros(0, np.int64)
        got = tier.sparse_counts(order, seg_q.astype(np.int64),
                                 seg_t.astype(np.int64),
                                 seg_lo.astype(np.int64),
                                 np.asarray(lengths, np.int64), A)
        assert got.dtype == np.int32
        assert np.array_equal(
            got, _oracle_sparse(order, seg_q, seg_t, seg_lo, lengths, A))

    @settings(max_examples=60, deadline=None)
    @given(A=st.integers(0, 6), n=st.integers(0, 50),
           threshold=st.integers(0, 4), seed=st.integers(0, 2**32 - 1))
    def test_crossings(self, tier, A, n, threshold, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 5, (A, n)).astype(np.int32)
        prev = np.minimum(counts, rng.integers(0, 5, (A, n))).astype(np.int32)
        qs, ids = tier.crossings(counts, prev, threshold)
        eq, eids = np.nonzero((counts >= threshold) & (prev < threshold))
        assert qs.dtype == np.int64 and ids.dtype == np.int64
        assert np.array_equal(qs, eq) and np.array_equal(ids, eids)

    @settings(max_examples=60, deadline=None)
    @given(vals=st.lists(st.floats(-1e6, 1e6), max_size=30),
           threshold=st.floats(-1e6, 1e6))
    def test_count_leq(self, tier, vals, threshold):
        arr = np.sort(np.asarray(vals, dtype=np.float64))
        assert tier.count_leq(arr, threshold) == int(
            np.searchsorted(arr, threshold, side="right"))

    @settings(max_examples=60, deadline=None)
    @given(a=st.lists(st.floats(-100, 100), max_size=20),
           b=st.lists(st.floats(-100, 100), max_size=20))
    def test_merge_sorted(self, tier, a, b):
        sa = np.sort(np.asarray(a, np.float64))
        sb = np.sort(np.asarray(b, np.float64))
        got = tier.merge_sorted(sa, sb)
        assert np.array_equal(got, np.sort(np.concatenate((sa, sb))))

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(1, 40), size=st.integers(0, 100),
           seed=st.integers(0, 2**32 - 1))
    def test_bincount(self, tier, n, size, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, n, size)
        got = tier.bincount_i32(ids, n)
        assert got.dtype == np.int32
        assert np.array_equal(got, np.bincount(ids, minlength=n))

    @settings(max_examples=60, deadline=None)
    @given(shape=st.tuples(st.integers(0, 12), st.integers(0, 24)),
           seed=st.integers(0, 2**32 - 1))
    def test_distances_close_to_naive(self, tier, shape, seed):
        rng = np.random.default_rng(seed)
        pts = rng.standard_normal(shape)
        q = rng.standard_normal(shape[1])
        np.testing.assert_allclose(
            tier.euclidean_distances(pts, q),
            np.sqrt(((pts - q) ** 2).sum(axis=1)), rtol=1e-12, atol=0)
        np.testing.assert_allclose(
            tier.manhattan_distances(pts, q),
            np.abs(pts - q).sum(axis=1), rtol=1e-12, atol=0)


# --------------------------------------------------------------------------
# cross-tier bit-identity (numba installed only)
# --------------------------------------------------------------------------

@needs_numba
class TestTiersBitIdentical:

    @settings(max_examples=40, deadline=None)
    @given(shape=st.tuples(st.integers(0, 12), st.integers(0, 24)),
           seed=st.integers(0, 2**32 - 1))
    def test_distances_bit_identical(self, shape, seed):
        rng = np.random.default_rng(seed)
        pts = rng.standard_normal(shape)
        q = rng.standard_normal(shape[1])
        for fn in ("euclidean_distances", "manhattan_distances"):
            a = getattr(numpy_tier, fn)(pts.copy(), q)
            b = getattr(numba_tier, fn)(pts, q)
            assert a.tobytes() == b.tobytes(), fn

    def test_end_to_end_query_batch_bit_identical(self, restore_backend,
                                                  clustered):
        from repro import C2LSH

        data, queries = clustered
        per_tier = []
        for tier in (numpy_tier, numba_tier):
            _use(tier)
            index = C2LSH(seed=11).fit(data)
            per_tier.append(index.query_batch(queries, k=5, n_jobs=1))
        for a, b in zip(*per_tier):
            assert np.array_equal(a.ids, b.ids)
            assert a.distances.tobytes() == b.distances.tobytes()
            assert a.stats.terminated_by == b.stats.terminated_by
            assert a.stats.rounds == b.stats.rounds
            assert a.stats.scanned_entries == b.stats.scanned_entries
            assert a.stats.candidates == b.stats.candidates


# --------------------------------------------------------------------------
# adversarial shapes through the dispatch layer
# --------------------------------------------------------------------------

@pytest.mark.parametrize("tier", TIERS)
class TestAdversarialShapes:

    def test_zero_row_tables(self, tier, restore_backend):
        _use(tier)
        rows = np.empty((3, 0), dtype=np.int64)
        out = kernels.row_searchsorted(rows, np.array([1, 2, 3]))
        assert np.array_equal(out, np.zeros(3, dtype=np.int64))
        counts = kernels.dense_counts(np.empty((3, 0), np.int32),
                                      np.zeros((2, 3), np.int64),
                                      np.zeros((2, 3), np.int64))
        assert counts.shape == (2, 0)

    def test_empty_active_set(self, tier, restore_backend):
        _use(tier)
        rank = np.array([[0, 1, 2]], dtype=np.int32)
        counts = kernels.dense_counts(rank, np.zeros((0, 1), np.int64),
                                      np.zeros((0, 1), np.int64))
        assert counts.shape == (0, 3)
        qs, ids = kernels.crossings(np.zeros((0, 3), np.int32),
                                    np.zeros((0, 3), np.int32), 1)
        assert qs.size == 0 and ids.size == 0

    def test_no_segments(self, tier, restore_backend):
        _use(tier)
        order = np.array([[2, 0, 1]], dtype=np.int64)
        z = np.zeros(0, np.int64)
        delta = kernels.sparse_counts(order, z, z, z, z, 4)
        assert delta.shape == (4, 3) and not delta.any()

    def test_single_query_batch(self, tier, restore_backend):
        _use(tier)
        rows = np.array([[0, 5, 5, 9]], dtype=np.int64)
        out = kernels.row_searchsorted(rows, np.array([[5]]), side="right")
        assert out.shape == (1, 1) and out[0, 0] == 3

    def test_non_contiguous_views(self, tier, restore_backend):
        """Strided views (shared_memory shard slices) must work unchanged."""
        _use(tier)
        rng = np.random.default_rng(0)
        base = np.sort(rng.integers(0, 30, (8, 40)), axis=1)
        rows = base[::2]  # row-strided view
        assert not rows.flags["C_CONTIGUOUS"] or rows.base is not None
        tg_base = rng.integers(0, 30, (10, 8))
        targets = tg_base[::2, ::2]  # doubly strided
        got = kernels.row_searchsorted(rows, targets)
        assert np.array_equal(got, _oracle_searchsorted(
            np.ascontiguousarray(rows), np.ascontiguousarray(targets),
            "left"))
        pts_base = rng.standard_normal((12, 16))
        pts = pts_base[1::2, ::2]
        q = pts_base[0, ::2]
        np.testing.assert_allclose(
            kernels.euclidean_distances(pts, q),
            np.sqrt(((pts - q) ** 2).sum(axis=1)), rtol=1e-12)

    def test_duplicate_heavy_ties(self, tier, restore_backend):
        _use(tier)
        rows = np.zeros((4, 32), dtype=np.int64)  # every id equal
        left = kernels.row_searchsorted(rows, np.zeros((3, 4), np.int64))
        right = kernels.row_searchsorted(rows, np.zeros((3, 4), np.int64),
                                         side="right")
        assert np.all(left == 0) and np.all(right == 32)


# --------------------------------------------------------------------------
# forced fallback end to end
# --------------------------------------------------------------------------

class TestForcedFallbackEndToEnd:

    def test_numpy_forced_query_results_match_default(self, restore_backend,
                                                      tiny):
        """A REPRO_KERNELS=numpy run answers exactly like the default run."""
        from repro import C2LSH

        data, queries = tiny
        kernels.select(None)
        default = C2LSH(seed=3).fit(data).query_batch(queries, k=4, n_jobs=1)
        kernels.select("numpy")
        forced = C2LSH(seed=3).fit(data).query_batch(queries, k=4, n_jobs=1)
        for a, b in zip(default, forced):
            assert np.array_equal(a.ids, b.ids)
            assert a.distances.tobytes() == b.distances.tobytes()
            assert a.stats.terminated_by == b.stats.terminated_by

    def test_sequential_matches_batch_on_numpy_tier(self, restore_backend,
                                                    tiny):
        from repro import C2LSH

        data, queries = tiny
        kernels.select("numpy")
        index = C2LSH(seed=3).fit(data)
        seq = [index.query(q, k=4) for q in queries]
        bat = index.query_batch(queries, k=4, n_jobs=1)
        for a, b in zip(seq, bat):
            assert np.array_equal(a.ids, b.ids)
            assert a.distances.tobytes() == b.distances.tobytes()
