"""Tests for the evaluation metrics."""

import math

import numpy as np
import pytest

from repro.core.results import QueryResult, QueryStats
from repro.eval import evaluate_results, overall_ratio, recall


class TestOverallRatio:
    def test_exact_answer_is_one(self):
        assert overall_ratio([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_rankwise_mean(self):
        got = overall_ratio([2.0, 6.0], [1.0, 2.0])
        assert got == pytest.approx((2.0 + 3.0) / 2)

    def test_zero_distances_handled(self):
        assert overall_ratio([0.0], [0.0]) == pytest.approx(1.0)

    def test_empty_result_is_nan(self):
        assert math.isnan(overall_ratio([], [1.0]))

    def test_short_result_scored_over_returned_ranks(self):
        assert overall_ratio([1.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_never_below_one_for_valid_answers(self):
        """Returned distances cannot beat the true NNs rank by rank."""
        true = np.sort(np.random.default_rng(0).random(10))
        result = true * 1.5
        assert overall_ratio(result, true) >= 1.0


class TestRecall:
    def test_perfect(self):
        assert recall([1, 2, 3], [3, 2, 1]) == 1.0

    def test_partial(self):
        assert recall([1, 9, 8], [1, 2, 3]) == pytest.approx(1 / 3)

    def test_zero(self):
        assert recall([7, 8], [1, 2]) == 0.0

    def test_empty_result(self):
        assert recall([], [1, 2]) == 0.0

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            recall([1], [])


class TestEvaluateResults:
    def make_results(self):
        r1 = QueryResult(np.array([0, 1]), np.array([1.0, 2.0]),
                         QueryStats(candidates=10, io_reads=5, rounds=2,
                                    scanned_entries=40))
        r2 = QueryResult(np.array([5, 2]), np.array([2.0, 4.0]),
                         QueryStats(candidates=20, io_reads=7, rounds=3,
                                    scanned_entries=60))
        true_ids = np.array([[0, 1], [2, 3]])
        true_dists = np.array([[1.0, 2.0], [2.0, 2.0]])
        return [r1, r2], true_ids, true_dists

    def test_aggregates(self):
        results, tids, tdists = self.make_results()
        summary = evaluate_results(results, tids, tdists, k=2,
                                   total_time=1.0)
        assert summary.k == 2
        assert summary.n_queries == 2
        assert summary.recall == pytest.approx((1.0 + 0.5) / 2)
        assert summary.io_reads == pytest.approx(6.0)
        assert summary.candidates == pytest.approx(15.0)
        assert summary.rounds == pytest.approx(2.5)
        assert summary.query_time == pytest.approx(0.5)

    def test_ratio_aggregation(self):
        results, tids, tdists = self.make_results()
        summary = evaluate_results(results, tids, tdists, k=2)
        expected_r2 = (2.0 / 2.0 + 4.0 / 2.0) / 2
        assert summary.ratio == pytest.approx((1.0 + expected_r2) / 2)

    def test_time_optional(self):
        results, tids, tdists = self.make_results()
        summary = evaluate_results(results, tids, tdists, k=2)
        assert math.isnan(summary.query_time)

    def test_count_mismatch_rejected(self):
        results, tids, tdists = self.make_results()
        with pytest.raises(ValueError):
            evaluate_results(results[:1], tids, tdists, k=2)

    def test_insufficient_ground_truth_rejected(self):
        results, tids, tdists = self.make_results()
        with pytest.raises(ValueError):
            evaluate_results(results, tids, tdists, k=5)

    def test_row_formatting(self):
        results, tids, tdists = self.make_results()
        summary = evaluate_results(results, tids, tdists, k=2,
                                   total_time=0.2)
        row = summary.row()
        assert row[0] == 2
        assert all(isinstance(cell, (int, str)) for cell in row)
