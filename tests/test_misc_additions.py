"""Tests for the binary-vector generator, devices experiment, and entry point."""

import numpy as np
import pytest

from repro.__main__ import main as repro_main
from repro.data import binary_vectors


class TestBinaryVectors:
    def test_values_are_binary(self):
        data = binary_vectors(100, 32, seed=0)
        assert set(np.unique(data)) <= {0, 1}

    def test_ones_fraction(self):
        data = binary_vectors(2000, 64, ones_fraction=0.2, seed=0)
        assert data.mean() == pytest.approx(0.2, abs=0.02)

    def test_clusters_have_small_intra_hamming(self):
        data = binary_vectors(400, 64, n_clusters=4, flip=0.02, seed=0)
        # Points in the same cluster differ in ~2*0.02*64 ~ 2.5 bits;
        # different clusters in ~32.
        dists = np.count_nonzero(data[:50] != data[0], axis=1)
        near = np.count_nonzero(dists < 10)
        far = np.count_nonzero(dists > 20)
        assert near >= 5
        assert far >= 5

    def test_reproducible(self):
        assert np.array_equal(binary_vectors(50, 16, seed=3),
                              binary_vectors(50, 16, seed=3))

    def test_validation(self):
        with pytest.raises(ValueError):
            binary_vectors(10, 8, ones_fraction=0.0)
        with pytest.raises(ValueError):
            binary_vectors(10, 8, n_clusters=2, flip=0.6)

    def test_hamming_c2lsh_end_to_end(self):
        from repro import C2LSH
        from repro.data import exact_knn
        from repro.hashing import BitSamplingFamily

        data = binary_vectors(600, 64, n_clusters=6, flip=0.02,
                              seed=1).astype(np.float64)
        index = C2LSH(family=BitSamplingFamily(64), c=2, seed=0).fit(data)
        q = data[7]
        result = index.query(q, k=5)
        _, true_dists = exact_knn(data, q, 5, metric="hamming")
        # Clustered binary data has many exact duplicates, so compare
        # rank-wise distances (ids tie arbitrarily at distance 0).
        assert np.allclose(result.distances, true_dists)


class TestDevicesExperiment:
    def test_table_prices_all_devices(self, capsys):
        from repro.eval import harness

        args = type("Args", (), dict(
            datasets=["color"], scale=0.002, queries=5, ks=[1, 5], c=2,
            delta=0.01, seed=0, methods=["c2lsh", "linear"], lsb_trees=2,
            e2lsh_K=4, e2lsh_L=4, mp_probes=4, out_dir=None,
        ))()
        table = harness.exp_devices(args)
        assert {"hdd_ms", "ssd_ms", "nvme_ms", "access"} <= set(table.headers)
        for row in table.rows:
            hdd, ssd, nvme = (float(row[4]), float(row[5]), float(row[6]))
            assert hdd > ssd > nvme
        accesses = {row[1]: row[3] for row in table.rows}
        assert accesses["linear"] == "seq"
        assert accesses["c2lsh"] == "random"


class TestEntryPoint:
    def test_version_banner(self, capsys):
        assert repro_main([]) == 0
        assert "repro" in capsys.readouterr().out

    def test_selfcheck_passes(self, capsys):
        assert repro_main(["--selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
