"""Tests for the Multi-Probe LSH baseline."""

import numpy as np
import pytest

from repro import MultiProbeLSH, PageManager
from repro.baselines import perturbation_sequence
from repro.data import exact_knn


class TestPerturbationSequence:
    def test_scores_non_decreasing(self):
        rng = np.random.default_rng(0)
        scores = rng.random(8)

        def total(delta_set, scores):
            out = 0.0
            for func, direction in delta_set:
                flat = 2 * func + (0 if direction == -1 else 1)
                out += scores[flat]
            return out

        seq = list(perturbation_sequence(scores, 20))
        totals = [total(s, scores) for s in seq]
        assert totals == sorted(totals)

    def test_no_function_repeats_within_a_set(self):
        rng = np.random.default_rng(1)
        scores = rng.random(10)
        for delta_set in perturbation_sequence(scores, 30):
            funcs = [f for f, _ in delta_set]
            assert len(set(funcs)) == len(funcs)

    def test_first_probe_is_cheapest_single(self):
        scores = np.array([5.0, 1.0, 3.0, 4.0])
        first = next(iter(perturbation_sequence(scores, 1)))
        assert first == [(0, +1)]  # index 1 => function 0, direction +1

    def test_emits_requested_count_when_available(self):
        scores = np.arange(1.0, 9.0)
        assert len(list(perturbation_sequence(scores, 10))) == 10

    def test_zero_probes(self):
        assert list(perturbation_sequence(np.ones(4), 0)) == []

    def test_sets_are_unique(self):
        scores = np.arange(1.0, 7.0)
        seq = [tuple(sorted(s)) for s in perturbation_sequence(scores, 25)]
        assert len(seq) == len(set(seq))

    def test_validation(self):
        with pytest.raises(ValueError):
            list(perturbation_sequence(np.ones(3), 5))  # odd length
        with pytest.raises(ValueError):
            list(perturbation_sequence(np.ones(4), -1))
        with pytest.raises(ValueError):
            list(perturbation_sequence(np.empty(0), 1))


class TestMultiProbeLSH:
    def test_probing_raises_recall(self, clustered):
        data, queries = clustered
        true_ids, _ = exact_knn(data, queries, 5)

        def recall(n_probes):
            index = MultiProbeLSH(K=8, L=4, n_probes=n_probes,
                                  seed=0).fit(data)
            hits = 0
            for q, truth in zip(queries, true_ids):
                got = index.query(q, k=5)
                hits += len(set(got.ids.tolist()) & set(truth.tolist()))
            return hits / (5 * len(queries))

        assert recall(24) >= recall(0)
        assert recall(24) > 0.6

    def test_matches_e2lsh_with_fewer_tables(self, clustered):
        """The module's reason to exist: few tables + probes ~ many tables."""
        from repro import E2LSH
        data, queries = clustered
        true_ids, _ = exact_knn(data, queries, 5)
        mp = MultiProbeLSH(K=8, L=4, n_probes=24, seed=0).fit(data)
        e2 = E2LSH(K=8, L=16, seed=0).fit(data)
        hits_mp = hits_e2 = 0
        for q, truth in zip(queries, true_ids):
            hits_mp += len(set(mp.query(q, k=5).ids.tolist())
                           & set(truth.tolist()))
            hits_e2 += len(set(e2.query(q, k=5).ids.tolist())
                           & set(truth.tolist()))
        assert hits_mp >= hits_e2 - 5  # within a small slack

    def test_exact_match_found(self, clustered):
        data, _ = clustered
        index = MultiProbeLSH(K=6, L=4, n_probes=8, seed=0).fit(data)
        assert index.query(data[9], k=1).ids[0] == 9

    def test_probe_count_bounds_rounds(self, tiny):
        data, queries = tiny
        index = MultiProbeLSH(K=4, L=3, n_probes=5, seed=0).fit(data)
        stats = index.query(queries[0], k=2).stats
        assert stats.rounds <= 3 * (1 + 5)  # L * (home + probes)

    def test_io_accounting(self, tiny):
        data, queries = tiny
        pm = PageManager()
        index = MultiProbeLSH(K=4, L=3, n_probes=4, seed=0,
                              page_manager=pm).fit(data)
        assert pm.stats.writes > 0
        result = index.query(queries[0], k=2)
        assert result.stats.io_reads >= result.stats.candidates
        assert index.index_pages() == 3 * pm.pages_for(data.shape[0], 12)

    def test_determinism(self, tiny):
        data, queries = tiny
        a = MultiProbeLSH(K=4, L=3, n_probes=4, seed=2).fit(data) \
            .query(queries[0], k=3)
        b = MultiProbeLSH(K=4, L=3, n_probes=4, seed=2).fit(data) \
            .query(queries[0], k=3)
        assert np.array_equal(a.ids, b.ids)

    def test_validation(self, tiny):
        data, queries = tiny
        with pytest.raises(ValueError):
            MultiProbeLSH(K=0)
        with pytest.raises(ValueError):
            MultiProbeLSH(n_probes=-1)
        index = MultiProbeLSH(K=4, L=2, seed=0).fit(data)
        with pytest.raises(ValueError):
            index.query(np.zeros(9))
        with pytest.raises(ValueError):
            index.query(queries[0], k=0)
        with pytest.raises(RuntimeError):
            MultiProbeLSH(K=4, L=2).query(queries[0])

    def test_results_sorted(self, tiny):
        data, queries = tiny
        index = MultiProbeLSH(K=4, L=3, n_probes=6, seed=0).fit(data)
        for q in queries:
            assert np.all(np.diff(index.query(q, k=5).distances) >= 0)
