"""Telemetry subsystem: registry, span tracing, sinks, and the CLI.

Three layers of coverage:

* unit — counters/gauges/histograms, span nesting and the disabled-path
  no-ops;
* integration — traced C2LSH queries must account for the wall time they
  spend, and the I/O totals in the event stream must agree *exactly* with
  the ``QueryStats`` the engine returns;
* round-trip — a JSONL event log reloaded and replayed must reproduce the
  live snapshot bit-for-bit, the Prometheus exposition must parse line by
  line, and ``python -m repro.obs`` must summarize a real log.
"""

import json
import re
import time

import pytest

from repro import C2LSH, PageManager
from repro.eval import harness
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    IOEvent,
    JsonlSink,
    MetricsRegistry,
    SnapshotSink,
    SpanEvent,
    load_jsonl,
    render_prometheus,
    replay,
    trace,
    tracing,
)
from repro.obs.__main__ import main as obs_main


@pytest.fixture()
def fitted(tiny):
    """A fitted paged index (so queries charge real I/O) plus queries."""
    data, queries = tiny
    index = C2LSH(seed=0, page_manager=PageManager()).fit(data)
    return index, queries


class TestRegistry:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("hits") is counter  # get-or-create

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("bad").inc(-1)

    def test_gauge(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        gauge.inc(2.0)
        assert gauge.value == 7.0

    def test_histogram_percentiles(self):
        hist = Histogram("latency")
        values = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
        for v in values:
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(sum(values))
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.100)
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] \
            <= snap["max"]

    def test_histogram_empty(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_iteration_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2.5)
        registry.histogram("c").observe(0.1)
        assert len(registry) == 3
        assert {name for name, _ in registry} == {"a", "b", "c"}
        snap = registry.snapshot()
        assert snap["a"] == 1
        assert snap["b"] == 2.5
        assert snap["c"]["count"] == 1


class TestTrace:
    def test_disabled_path_is_noop(self):
        assert not trace.active()
        sp = trace.span("anything", radius=4)
        assert sp is trace.NULL_SPAN
        assert sp.set(more=1) is sp
        with sp:
            pass
        # Point and I/O events silently vanish when no trace is active.
        trace.event("query_stats", io_reads=3)
        trace.io_event("read", 7, "bucket_scan")

    def test_nesting_parent_ids(self):
        with tracing() as tr:
            with trace.span("outer") as outer:
                with trace.span("inner", radius=2) as inner:
                    inner.set(scanned=9)
        events = {e.name: e for e in tr.events}
        assert events["inner"].parent_id == outer.span_id
        assert events["outer"].parent_id is None
        assert events["inner"].attrs == {"radius": 2, "scanned": 9}
        # Children close (and are emitted) before their parents.
        assert tr.events[0].name == "inner"

    def test_point_event_and_io_attribution(self):
        with tracing() as tr:
            with trace.span("round") as sp:
                trace.io_event("read", 3, "bucket_scan")
                trace.event("marker", value=1)
        io = [e for e in tr.events if isinstance(e, IOEvent)]
        assert io == [IOEvent(kind="read", pages=3, site="bucket_scan",
                              span_id=sp.span_id)]
        marker = next(e for e in tr.events
                      if isinstance(e, SpanEvent) and e.name == "marker")
        assert marker.duration_s == 0.0
        assert marker.parent_id == sp.span_id

    def test_nested_tracing_shadows_and_restores(self):
        with tracing() as outer:
            with tracing() as inner:
                with trace.span("work"):
                    pass
            assert trace.current() is outer
        assert not trace.active()
        assert [e.name for e in inner.events] == ["work"]
        assert outer.events == []

    def test_keep_events_false(self):
        sink = SnapshotSink()
        with tracing(sink, keep_events=False) as tr:
            with trace.span("work"):
                pass
        assert tr.events == []
        assert sink.registry.counter("span.work.count").value == 1


class TestQueryIntegration:
    def test_span_tree_accounts_for_wall_time(self, fitted):
        """Root spans must cover >= 90% of the traced query's wall time."""
        index, queries = fitted
        index.query(queries[0], k=5)  # warm lazy state
        with tracing() as tr:
            t0 = time.perf_counter()
            index.query(queries[0], k=5)
            wall = time.perf_counter() - t0
        accounted = sum(e.duration_s for e in tr.events
                        if isinstance(e, SpanEvent) and e.parent_id is None
                        and e.duration_s > 0.0)
        assert accounted >= 0.9 * wall

    def test_sequential_io_parity(self, fitted):
        """The query span and the I/O event stream both match QueryStats."""
        index, queries = fitted
        for q in queries:
            with tracing() as tr:
                result = index.query(q, k=5)
            qspan = next(e for e in tr.events
                         if isinstance(e, SpanEvent) and e.name == "query")
            assert qspan.attrs["io_reads"] == result.stats.io_reads
            assert qspan.attrs["rounds"] == result.stats.rounds
            assert qspan.attrs["terminated_by"] == \
                result.stats.terminated_by
            read_pages = sum(e.pages for e in tr.events
                             if isinstance(e, IOEvent) and e.kind == "read")
            assert read_pages == result.stats.io_reads

    def test_batch_jsonl_io_parity(self, fitted, tmp_path):
        """Per-query ``io_reads`` in the JSONL log == QueryStats, exactly."""
        index, queries = fitted
        path = tmp_path / "events.jsonl"
        with tracing(JsonlSink(path)):
            results = index.query_batch(queries, k=5)
        events = {e.attrs["query"]: e.attrs
                  for e in load_jsonl(path)
                  if isinstance(e, SpanEvent) and e.name == "query_stats"}
        assert sorted(events) == list(range(len(queries)))
        for q, attrs in events.items():
            stats = results[q].stats
            assert attrs["io_reads"] == stats.io_reads
            assert attrs["io_writes"] == stats.io_writes
            assert attrs["rounds"] == stats.rounds
            assert attrs["final_radius"] == stats.final_radius
            assert attrs["candidates"] == stats.candidates
            assert attrs["scanned_entries"] == stats.scanned_entries
            assert attrs["terminated_by"] == stats.terminated_by
            assert attrs["elapsed_s"] == stats.elapsed_s

    def test_batch_emits_round_spans(self, fitted):
        index, queries = fitted
        with tracing() as tr:
            index.query_batch(queries, k=5)
        names = [e.name for e in tr.events if isinstance(e, SpanEvent)]
        assert "batch_block" in names
        assert "round" in names
        assert "count_round" in names
        assert "verify" in names


class TestSinks:
    def test_jsonl_round_trip_equals_live_snapshot(self, fitted, tmp_path):
        index, queries = fitted
        path = tmp_path / "events.jsonl"
        live = SnapshotSink()
        with tracing(live, JsonlSink(path)):
            index.query_batch(queries, k=5)
            index.query(queries[0], k=5)
        replayed, = replay(load_jsonl(path), SnapshotSink())
        assert replayed.phase_totals() == live.phase_totals()
        assert replayed.snapshot() == live.snapshot()

    def test_jsonl_sink_does_not_close_callers_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w") as fh:
            with tracing(JsonlSink(fh)):
                with trace.span("work"):
                    pass
            assert not fh.closed  # tracing() finished the sink
        assert [e.name for e in load_jsonl(path)] == ["work"]

    def test_snapshot_sink_phase_totals(self):
        sink = SnapshotSink()
        with tracing(sink):
            with trace.span("hash"):
                pass
            with trace.span("hash"):
                pass
        totals = sink.phase_totals()
        assert set(totals) == {"hash"}
        assert totals["hash"] >= 0.0
        assert sink.registry.counter("span.hash.count").value == 2

    def test_prometheus_parses_line_by_line(self, fitted):
        index, queries = fitted
        sink = SnapshotSink()
        with tracing(sink):
            index.query(queries[0], k=5)
        text = render_prometheus(sink)
        assert text.endswith("\n")
        name_re = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
        for line in text.strip().splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                assert name_re.fullmatch(name)
                assert kind in {"counter", "gauge", "histogram"}
            else:
                metric, value = line.rsplit(" ", 1)
                float(value)  # every sample value must be numeric
                assert name_re.fullmatch(metric.split("{", 1)[0])
        assert "repro_span_query_count 1" in text
        assert "repro_io_read_bucket_scan_pages" in text

    def test_prometheus_histogram_series(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for v in (0.001, 0.01, 0.1):
            hist.observe(v)
        text = render_prometheus(registry)
        buckets = re.findall(r'repro_lat_bucket\{le="[^"]+"\} (\d+)', text)
        counts = [int(b) for b in buckets]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 3
        assert "repro_lat_count 3" in text


class TestCli:
    @pytest.fixture()
    def event_log(self, fitted, tmp_path):
        index, queries = fitted
        path = tmp_path / "events.jsonl"
        with tracing(JsonlSink(path)):
            index.query(queries[0], k=5)
        return path

    def test_table_output(self, event_log, capsys):
        assert obs_main([str(event_log)]) == 0
        out = capsys.readouterr().out
        assert "Phase breakdown" in out
        assert "query" in out
        assert "Page I/O" in out
        assert "bucket_scan" in out

    def test_json_output(self, event_log, capsys):
        assert obs_main([str(event_log), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["accounted_wall_s"] > 0.0
        assert snapshot["span.query.count"] == 1
        assert any(key.startswith("io.read.") for key in snapshot)


class TestHarnessMetrics:
    def test_out_dir_gets_metrics_snapshot(self, tmp_path, capsys):
        assert harness.main(["table-params",
                             "--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()  # swallow the experiment's table output
        path = tmp_path / "t1_params_metrics.json"
        assert path.exists()
        assert isinstance(json.loads(path.read_text()), dict)


class TestPercentileTinySamples:
    """Nearest-rank exactness at 0, 1, and 2 observations."""

    def test_empty_is_zero(self):
        hist = Histogram("lat")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.percentile(q) == 0.0

    def test_single_observation_is_returned_verbatim(self):
        hist = Histogram("lat")
        hist.observe(0.0421)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.percentile(q) == 0.0421
        snap = hist.snapshot()
        assert snap["p50"] == snap["p99"] == 0.0421

    def test_two_observations_nearest_rank(self):
        hist = Histogram("lat")
        hist.observe(0.010)
        hist.observe(0.020)
        assert hist.percentile(0.0) == 0.010
        assert hist.percentile(0.5) == 0.010
        assert hist.percentile(0.51) == 0.020
        assert hist.percentile(0.95) == 0.020
        assert hist.percentile(0.99) == 0.020

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("lat").percentile(1.5)


class TestRegistryReset:
    def test_reset_zeroes_values_and_keeps_references(self):
        registry = MetricsRegistry()
        counter = registry.counter("work")
        gauge = registry.gauge("level")
        hist = registry.histogram("lat")
        counter.inc(7)
        gauge.set(3.5)
        hist.observe(0.25)
        registry.reset()
        # Same objects, zeroed in place: call-site references stay live.
        assert registry.counter("work") is counter
        assert counter.value == 0
        assert gauge.value == 0.0
        assert hist.count == 0
        assert hist.snapshot()["p99"] == 0.0
        counter.inc(2)
        assert registry.snapshot()["work"] == 2

    def test_snapshot_sink_reset_restamps_kernels_gauge(self):
        sink = SnapshotSink()
        with tracing(sink):
            with trace.span("work"):
                pass
        assert sink.registry.counter("span.work.count").value == 1
        sink.reset()
        assert sink.registry.counter("span.work.count").value == 0
        # The kernel-tier stamp must survive the reset (re-applied).
        assert sink.registry.gauge("kernels.numba").value in (0.0, 1.0)


class TestPrometheusConformance:
    """Exposition must stay parseable under adversarial metric names."""

    NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
    SAMPLE_RE = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
        r'(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})?'
        r' (\S+)$')

    def test_weird_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("shard.worker.0.io.pages").inc(3)
        registry.counter("weird name/with:stuff!").inc(1)
        text = render_prometheus(registry)
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            assert self.SAMPLE_RE.match(line), line
        assert "repro_shard_worker_0_io_pages 3" in text

    def test_render_info_escapes_label_values(self):
        from repro.obs import render_info

        text = render_info("build_info", {
            "host": 'we"ird\nhost',
            "path": "back\\slash",
            "1leading_digit": "x",
        })
        line = text.strip().splitlines()[-1]
        assert self.SAMPLE_RE.match(line), line
        assert '\\"' in line          # quote escaped
        assert "\\n" in line          # newline escaped
        assert "\\\\" in line         # backslash escaped
        assert "_1leading_digit=" in line  # name made grammar-legal
        assert line.endswith(" 1")

    def test_render_info_round_trips_through_parser(self):
        from repro.obs import render_info

        text = render_info("build_info", {"git_sha": "abc123",
                                          "kernels": "numpy"})
        assert "# TYPE repro_build_info gauge" in text
        assert 'git_sha="abc123"' in text


class TestFlightRecorder:
    def test_ring_evicts_oldest(self):
        from repro.obs import FlightRecorder

        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.note("tick", i=i)
        assert len(rec) == 3
        events = rec.events()
        assert [e["i"] for e in events] == [2, 3, 4]
        assert [e["seq"] for e in events] == [3, 4, 5]

    def test_note_converts_numpy_scalars(self):
        import numpy as np

        from repro.obs import FlightRecorder

        rec = FlightRecorder(capacity=4)
        rec.note("x", pages=np.int64(7), frac=np.float64(0.5))
        event = rec.events()[0]
        assert type(event["pages"]) is int
        assert type(event["frac"]) is float
        json.dumps(event)  # must be JSON-safe end to end

    def test_dump_payload_and_rate_limit(self, tmp_path):
        from repro.obs import FlightRecorder

        rec = FlightRecorder(capacity=8, directory=str(tmp_path),
                             min_dump_interval_s=3600.0)
        rec.note("budget_exhausted", query=3, cap="io_pages")
        path = rec.dump("budget_exhausted", extra={"engine": "batch"})
        assert path is not None
        payload = json.loads(open(path).read())
        assert payload["format"].startswith("repro-flight")
        assert payload["reason"] == "budget_exhausted"
        assert payload["extra"] == {"engine": "batch"}
        assert payload["events"][0]["kind"] == "budget_exhausted"
        assert "git_sha" in payload["provenance"]
        # Second dump of the same reason inside the window is suppressed;
        # force bypasses, a different reason is independent.
        assert rec.dump("budget_exhausted") is None
        assert rec.dump("budget_exhausted", force=True) is not None
        assert rec.dump("retry_giveup") is not None

    def test_install_swaps_process_recorder(self, tmp_path):
        from repro.obs import FlightRecorder, flight

        mine = FlightRecorder(capacity=4, directory=str(tmp_path))
        old = flight.install(mine)
        try:
            flight.note("hello", x=1)
            assert flight.recorder() is mine
            assert mine.events()[0]["kind"] == "hello"
        finally:
            assert flight.install(old) is mine

    def test_rides_along_as_trace_sink(self):
        from repro.obs import FlightRecorder

        rec = FlightRecorder(capacity=16)
        with tracing(rec):
            with trace.span("round", radius=2):
                trace.io_event("read", 5, "bucket_scan")
        kinds = [e["kind"] for e in rec.events()]
        assert kinds == ["io", "span"]
        span = rec.events()[1]
        assert span["name"] == "round"
        assert span["radius"] == 2

    def test_cli_summarizes_flight_dump(self, tmp_path, capsys):
        from repro.obs import FlightRecorder

        rec = FlightRecorder(capacity=4, directory=str(tmp_path))
        rec.note("budget_exhausted", query=1, cap="candidates")
        path = rec.dump("budget_exhausted", extra={"engine": "sharded"})
        assert obs_main([path]) == 0
        out = capsys.readouterr().out
        assert "Flight recorder postmortem" in out
        assert "budget_exhausted" in out
        assert "cap=candidates" in out
        assert obs_main([path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reason"] == "budget_exhausted"


class TestRemoteGraft:
    def _worker_records(self):
        """Simulate a worker-side capture; returns exported records."""
        from repro.obs.remote import export_events

        with tracing() as local:
            with trace.span("shard.worker.round", shard=2, pid=12345,
                            kernels="numpy"):
                with trace.span("verify", count=4):
                    trace.io_event("read", 9, "data_read")
        return export_events(local.events)

    def test_graft_remaps_parents_under_open_span(self):
        from repro.obs.remote import graft

        records = self._worker_records()
        with tracing() as tr:
            with trace.span("shard.round", radius=1) as rspan:
                added = graft(records)
        assert added == 3
        by_name = {e.name: e for e in tr.events
                   if isinstance(e, SpanEvent)}
        worker = by_name["shard.worker.round"]
        assert worker.parent_id == rspan.span_id
        assert by_name["verify"].parent_id == worker.span_id
        io = next(e for e in tr.events if isinstance(e, IOEvent))
        assert io.span_id == by_name["verify"].span_id
        # Fresh ids: no collision with the receiving trace's own spans.
        ids = [e.span_id for e in tr.events if isinstance(e, SpanEvent)]
        assert len(ids) == len(set(ids))

    def test_graft_is_noop_without_a_trace(self):
        from repro.obs.remote import graft

        assert graft(self._worker_records()) == 0

    def test_grafted_events_reach_sinks_and_jsonl_round_trip(
            self, tmp_path):
        from repro.obs.remote import graft

        records = self._worker_records()
        path = tmp_path / "events.jsonl"
        live = SnapshotSink()
        with tracing(live, JsonlSink(path)):
            with trace.span("coordinator"):
                graft(records)
        assert live.registry.counter("io.read.data_read.pages").value == 9
        assert live.registry.counter(
            "span.shard.worker.round.count").value == 1
        replayed, = replay(load_jsonl(path), SnapshotSink())
        assert replayed.snapshot() == live.snapshot()

    def test_graft_root_attrs_merge(self):
        from repro.obs.remote import graft

        records = self._worker_records()
        with tracing() as tr:
            graft(records, worker=7)
        worker = next(e for e in tr.events if isinstance(e, SpanEvent)
                      and e.name == "shard.worker.round")
        assert worker.attrs["worker"] == 7
        assert worker.attrs["shard"] == 2  # worker stamp preserved


class TestObsServer:
    def _get(self, url):
        from urllib.request import urlopen

        with urlopen(url, timeout=5) as resp:
            return resp.status, resp.headers.get("Content-Type"), \
                resp.read().decode()

    def test_metrics_healthz_and_flightrecorder(self):
        from repro.obs import FlightRecorder, ObsServer

        registry = MetricsRegistry()
        registry.counter("shard.io.pages").inc(42)
        rec = FlightRecorder(capacity=4)
        rec.note("budget_exhausted", query=0)
        with ObsServer(registry, recorder=rec) as srv:
            status, ctype, body = self._get(srv.url + "/metrics")
            assert status == 200
            assert "version=0.0.4" in ctype
            assert "repro_shard_io_pages 42" in body
            assert "repro_build_info{" in body

            status, ctype, body = self._get(srv.url + "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["uptime_s"] >= 0.0

            status, _, body = self._get(srv.url + "/debug/flightrecorder")
            assert status == 200
            debug = json.loads(body)
            assert debug["capacity"] == 4
            assert debug["events"][0]["kind"] == "budget_exhausted"

    def test_unknown_path_is_404(self):
        from urllib.error import HTTPError

        from repro.obs import ObsServer

        with ObsServer(MetricsRegistry()) as srv:
            with pytest.raises(HTTPError) as err:
                self._get(srv.url + "/nope")
            assert err.value.code == 404

    def test_prefix_map_and_callable_metrics(self):
        from repro.obs import ObsServer

        late = {}

        def registries():
            return late

        with ObsServer(registries) as srv:
            # Registry created *after* start is still scraped.
            registry = MetricsRegistry()
            registry.counter("rounds").inc(3)
            late["repro_shard"] = registry
            _, _, body = self._get(srv.url + "/metrics")
            assert "repro_shard_rounds 3" in body

    def test_close_is_idempotent(self):
        from repro.obs import ObsServer

        srv = ObsServer(MetricsRegistry()).start()
        srv.close()
        srv.close()
        with pytest.raises(RuntimeError, match="not running"):
            srv.port


class TestDiff:
    def test_flatten_numeric_leaves_only(self):
        from repro.obs.diff import flatten

        flat = flatten({
            "a": {"b": 2, "c": [1.5, {"d": 3}]},
            "name": "text",
            "ok": True,
            "none": None,
        })
        assert flat == {"a.b": 2.0, "a.c.0": 1.5, "a.c.1.d": 3.0}

    def test_compare_directions_and_tolerance(self):
        from repro.obs.diff import compare

        base = {"seconds": 1.0, "qps": 100.0}
        cur = {"seconds": 1.4, "qps": 60.0}
        _, regressions = compare(base, cur, tolerance=0.25,
                                 direction="up")
        assert [r["key"] for r in regressions] == ["seconds"]
        _, regressions = compare(base, cur, tolerance=0.25,
                                 direction="down")
        assert [r["key"] for r in regressions] == ["qps"]
        _, regressions = compare(base, cur, tolerance=0.25,
                                 direction="any")
        assert [r["key"] for r in regressions] == ["qps", "seconds"]
        _, regressions = compare(base, cur, tolerance=0.5)
        assert regressions == []

    def test_compare_watch_ignore_and_min_base(self):
        from repro.obs.diff import compare

        base = {"seconds": 1.0, "tiny": 1e-9,
                "provenance": {"cpu_count": 4}}
        cur = {"seconds": 3.0, "tiny": 1e-6,
               "provenance": {"cpu_count": 64}}
        rows, regressions = compare(base, cur, watch=("seconds",),
                                    min_base=1e-6)
        assert [r["key"] for r in regressions] == ["seconds"]
        # provenance is ignored entirely, tiny is below the noise floor.
        assert all(r["key"] != "provenance.cpu_count" for r in rows)
        tiny = next(r for r in rows if r["key"] == "tiny")
        assert tiny["status"] == "unwatched"

    def test_compare_missing_and_added_keys(self):
        from repro.obs.diff import compare

        rows, regressions = compare({"gone": 1.0}, {"new": 2.0})
        status = {r["key"]: r["status"] for r in rows}
        assert status == {"gone": "missing", "new": "added"}
        assert regressions == []

    def test_cli_gate_exit_codes(self, tmp_path, capsys):
        base = {"query": {"seconds": 1.0, "io_pages": 500},
                "provenance": {"hostname": "a", "unix_time": 1.0}}
        current = json.loads(json.dumps(base))
        current["provenance"]["hostname"] = "b"   # ignored by default
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(base))
        cur_path.write_text(json.dumps(current))
        assert obs_main(["diff", str(base_path), str(cur_path)]) == 0
        assert "no regressions" in capsys.readouterr().out

        current["query"]["io_pages"] = 900  # +80%: beyond tolerance
        cur_path.write_text(json.dumps(current))
        assert obs_main(["diff", str(base_path), str(cur_path)]) == 1
        out = capsys.readouterr()
        assert "regressed" in out.out
        assert "metric(s) regressed" in out.err

    def test_cli_json_mode(self, tmp_path, capsys):
        base_path = tmp_path / "b.json"
        cur_path = tmp_path / "c.json"
        base_path.write_text(json.dumps({"x": 1.0}))
        cur_path.write_text(json.dumps({"x": 10.0}))
        assert obs_main(["diff", str(base_path), str(cur_path),
                         "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == ["x"]


class TestProvenance:
    def test_stamp_has_identifying_fields(self):
        from repro.obs import provenance

        stamp = provenance()
        assert set(stamp) >= {"git_sha", "hostname", "cpu_count",
                              "python", "numpy", "kernels", "pid",
                              "unix_time"}
        assert stamp["cpu_count"] >= 1
        assert stamp["kernels"]["backend"] in ("numpy", "numba")
        json.dumps(stamp)  # must serialize as-is

    def test_metrics_snapshot_carries_provenance(self, tmp_path, capsys):
        assert harness.main(["table-params",
                             "--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        snapshot = json.loads(
            (tmp_path / "t1_params_metrics.json").read_text())
        stamp = snapshot["provenance"]
        assert set(stamp) >= {"git_sha", "hostname", "cpu_count",
                              "python", "numpy", "kernels"}
        assert snapshot["kernels"]["backend"] in ("numpy", "numba")

    def test_shared_sink_resets_between_experiments(self, tmp_path,
                                                    capsys):
        from repro.obs import SnapshotSink

        args = harness.build_parser().parse_args(
            ["table-params", "--out-dir", str(tmp_path)])
        sink = SnapshotSink()
        assert harness._run_safely("table-params", args, sink)
        first = json.loads(
            (tmp_path / "t1_params_metrics.json").read_text())
        assert harness._run_safely("table-params", args, sink)
        second = json.loads(
            (tmp_path / "t1_params_metrics.json").read_text())
        capsys.readouterr()
        # Without the reset the second run would report doubled counters.
        drop = ("provenance", "kernels")
        assert {k: v for k, v in first.items() if k not in drop} == \
            {k: v for k, v in second.items() if k not in drop}

    def test_failed_experiment_leaves_flight_postmortem(self, tmp_path,
                                                        capsys,
                                                        monkeypatch):
        from repro.obs import FlightRecorder, flight

        mine = FlightRecorder(capacity=16, directory=str(tmp_path),
                              min_dump_interval_s=0.0)
        old = flight.install(mine)
        try:
            def boom(args):
                raise RuntimeError("synthetic failure")

            monkeypatch.setitem(harness.EXPERIMENTS, "table-params", boom)
            assert harness.main(["table-params",
                                 "--out-dir", str(tmp_path)]) == 1
        finally:
            flight.install(old)
        capsys.readouterr()
        flight_path = tmp_path / "table_params_flight.json"
        assert flight_path.exists()
        payload = json.loads(flight_path.read_text())
        assert payload["reason"] == "experiment_failed"
        assert payload["extra"] == {"experiment": "table-params"}
        assert any(e["kind"] == "experiment_failed"
                   for e in payload["events"])
        assert (tmp_path / "table_params_error.json").exists()
