"""Telemetry subsystem: registry, span tracing, sinks, and the CLI.

Three layers of coverage:

* unit — counters/gauges/histograms, span nesting and the disabled-path
  no-ops;
* integration — traced C2LSH queries must account for the wall time they
  spend, and the I/O totals in the event stream must agree *exactly* with
  the ``QueryStats`` the engine returns;
* round-trip — a JSONL event log reloaded and replayed must reproduce the
  live snapshot bit-for-bit, the Prometheus exposition must parse line by
  line, and ``python -m repro.obs`` must summarize a real log.
"""

import json
import re
import time

import pytest

from repro import C2LSH, PageManager
from repro.eval import harness
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    IOEvent,
    JsonlSink,
    MetricsRegistry,
    SnapshotSink,
    SpanEvent,
    load_jsonl,
    render_prometheus,
    replay,
    trace,
    tracing,
)
from repro.obs.__main__ import main as obs_main


@pytest.fixture()
def fitted(tiny):
    """A fitted paged index (so queries charge real I/O) plus queries."""
    data, queries = tiny
    index = C2LSH(seed=0, page_manager=PageManager()).fit(data)
    return index, queries


class TestRegistry:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("hits") is counter  # get-or-create

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("bad").inc(-1)

    def test_gauge(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        gauge.inc(2.0)
        assert gauge.value == 7.0

    def test_histogram_percentiles(self):
        hist = Histogram("latency")
        values = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
        for v in values:
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(sum(values))
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.100)
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] \
            <= snap["max"]

    def test_histogram_empty(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_iteration_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2.5)
        registry.histogram("c").observe(0.1)
        assert len(registry) == 3
        assert {name for name, _ in registry} == {"a", "b", "c"}
        snap = registry.snapshot()
        assert snap["a"] == 1
        assert snap["b"] == 2.5
        assert snap["c"]["count"] == 1


class TestTrace:
    def test_disabled_path_is_noop(self):
        assert not trace.active()
        sp = trace.span("anything", radius=4)
        assert sp is trace.NULL_SPAN
        assert sp.set(more=1) is sp
        with sp:
            pass
        # Point and I/O events silently vanish when no trace is active.
        trace.event("query_stats", io_reads=3)
        trace.io_event("read", 7, "bucket_scan")

    def test_nesting_parent_ids(self):
        with tracing() as tr:
            with trace.span("outer") as outer:
                with trace.span("inner", radius=2) as inner:
                    inner.set(scanned=9)
        events = {e.name: e for e in tr.events}
        assert events["inner"].parent_id == outer.span_id
        assert events["outer"].parent_id is None
        assert events["inner"].attrs == {"radius": 2, "scanned": 9}
        # Children close (and are emitted) before their parents.
        assert tr.events[0].name == "inner"

    def test_point_event_and_io_attribution(self):
        with tracing() as tr:
            with trace.span("round") as sp:
                trace.io_event("read", 3, "bucket_scan")
                trace.event("marker", value=1)
        io = [e for e in tr.events if isinstance(e, IOEvent)]
        assert io == [IOEvent(kind="read", pages=3, site="bucket_scan",
                              span_id=sp.span_id)]
        marker = next(e for e in tr.events
                      if isinstance(e, SpanEvent) and e.name == "marker")
        assert marker.duration_s == 0.0
        assert marker.parent_id == sp.span_id

    def test_nested_tracing_shadows_and_restores(self):
        with tracing() as outer:
            with tracing() as inner:
                with trace.span("work"):
                    pass
            assert trace.current() is outer
        assert not trace.active()
        assert [e.name for e in inner.events] == ["work"]
        assert outer.events == []

    def test_keep_events_false(self):
        sink = SnapshotSink()
        with tracing(sink, keep_events=False) as tr:
            with trace.span("work"):
                pass
        assert tr.events == []
        assert sink.registry.counter("span.work.count").value == 1


class TestQueryIntegration:
    def test_span_tree_accounts_for_wall_time(self, fitted):
        """Root spans must cover >= 90% of the traced query's wall time."""
        index, queries = fitted
        index.query(queries[0], k=5)  # warm lazy state
        with tracing() as tr:
            t0 = time.perf_counter()
            index.query(queries[0], k=5)
            wall = time.perf_counter() - t0
        accounted = sum(e.duration_s for e in tr.events
                        if isinstance(e, SpanEvent) and e.parent_id is None
                        and e.duration_s > 0.0)
        assert accounted >= 0.9 * wall

    def test_sequential_io_parity(self, fitted):
        """The query span and the I/O event stream both match QueryStats."""
        index, queries = fitted
        for q in queries:
            with tracing() as tr:
                result = index.query(q, k=5)
            qspan = next(e for e in tr.events
                         if isinstance(e, SpanEvent) and e.name == "query")
            assert qspan.attrs["io_reads"] == result.stats.io_reads
            assert qspan.attrs["rounds"] == result.stats.rounds
            assert qspan.attrs["terminated_by"] == \
                result.stats.terminated_by
            read_pages = sum(e.pages for e in tr.events
                             if isinstance(e, IOEvent) and e.kind == "read")
            assert read_pages == result.stats.io_reads

    def test_batch_jsonl_io_parity(self, fitted, tmp_path):
        """Per-query ``io_reads`` in the JSONL log == QueryStats, exactly."""
        index, queries = fitted
        path = tmp_path / "events.jsonl"
        with tracing(JsonlSink(path)):
            results = index.query_batch(queries, k=5)
        events = {e.attrs["query"]: e.attrs
                  for e in load_jsonl(path)
                  if isinstance(e, SpanEvent) and e.name == "query_stats"}
        assert sorted(events) == list(range(len(queries)))
        for q, attrs in events.items():
            stats = results[q].stats
            assert attrs["io_reads"] == stats.io_reads
            assert attrs["io_writes"] == stats.io_writes
            assert attrs["rounds"] == stats.rounds
            assert attrs["final_radius"] == stats.final_radius
            assert attrs["candidates"] == stats.candidates
            assert attrs["scanned_entries"] == stats.scanned_entries
            assert attrs["terminated_by"] == stats.terminated_by
            assert attrs["elapsed_s"] == stats.elapsed_s

    def test_batch_emits_round_spans(self, fitted):
        index, queries = fitted
        with tracing() as tr:
            index.query_batch(queries, k=5)
        names = [e.name for e in tr.events if isinstance(e, SpanEvent)]
        assert "batch_block" in names
        assert "round" in names
        assert "count_round" in names
        assert "verify" in names


class TestSinks:
    def test_jsonl_round_trip_equals_live_snapshot(self, fitted, tmp_path):
        index, queries = fitted
        path = tmp_path / "events.jsonl"
        live = SnapshotSink()
        with tracing(live, JsonlSink(path)):
            index.query_batch(queries, k=5)
            index.query(queries[0], k=5)
        replayed, = replay(load_jsonl(path), SnapshotSink())
        assert replayed.phase_totals() == live.phase_totals()
        assert replayed.snapshot() == live.snapshot()

    def test_jsonl_sink_does_not_close_callers_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w") as fh:
            with tracing(JsonlSink(fh)):
                with trace.span("work"):
                    pass
            assert not fh.closed  # tracing() finished the sink
        assert [e.name for e in load_jsonl(path)] == ["work"]

    def test_snapshot_sink_phase_totals(self):
        sink = SnapshotSink()
        with tracing(sink):
            with trace.span("hash"):
                pass
            with trace.span("hash"):
                pass
        totals = sink.phase_totals()
        assert set(totals) == {"hash"}
        assert totals["hash"] >= 0.0
        assert sink.registry.counter("span.hash.count").value == 2

    def test_prometheus_parses_line_by_line(self, fitted):
        index, queries = fitted
        sink = SnapshotSink()
        with tracing(sink):
            index.query(queries[0], k=5)
        text = render_prometheus(sink)
        assert text.endswith("\n")
        name_re = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
        for line in text.strip().splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                assert name_re.fullmatch(name)
                assert kind in {"counter", "gauge", "histogram"}
            else:
                metric, value = line.rsplit(" ", 1)
                float(value)  # every sample value must be numeric
                assert name_re.fullmatch(metric.split("{", 1)[0])
        assert "repro_span_query_count 1" in text
        assert "repro_io_read_bucket_scan_pages" in text

    def test_prometheus_histogram_series(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for v in (0.001, 0.01, 0.1):
            hist.observe(v)
        text = render_prometheus(registry)
        buckets = re.findall(r'repro_lat_bucket\{le="[^"]+"\} (\d+)', text)
        counts = [int(b) for b in buckets]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 3
        assert "repro_lat_count 3" in text


class TestCli:
    @pytest.fixture()
    def event_log(self, fitted, tmp_path):
        index, queries = fitted
        path = tmp_path / "events.jsonl"
        with tracing(JsonlSink(path)):
            index.query(queries[0], k=5)
        return path

    def test_table_output(self, event_log, capsys):
        assert obs_main([str(event_log)]) == 0
        out = capsys.readouterr().out
        assert "Phase breakdown" in out
        assert "query" in out
        assert "Page I/O" in out
        assert "bucket_scan" in out

    def test_json_output(self, event_log, capsys):
        assert obs_main([str(event_log), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["accounted_wall_s"] > 0.0
        assert snapshot["span.query.count"] == 1
        assert any(key.startswith("io.read.") for key in snapshot)


class TestHarnessMetrics:
    def test_out_dir_gets_metrics_snapshot(self, tmp_path, capsys):
        assert harness.main(["table-params",
                             "--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()  # swallow the experiment's table output
        path = tmp_path / "t1_params_metrics.json"
        assert path.exists()
        assert isinstance(json.loads(path.read_text()), dict)
