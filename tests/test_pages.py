"""Tests for the page-based I/O cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DEFAULT_PAGE_SIZE, IOStats, PageManager


class TestIOStats:
    def test_total(self):
        assert IOStats(reads=3, writes=4).total == 7

    def test_copy_is_independent(self):
        a = IOStats(reads=1)
        b = a.copy()
        b.reads = 99
        assert a.reads == 1

    def test_subtraction(self):
        diff = IOStats(reads=10, writes=5) - IOStats(reads=4, writes=1)
        assert (diff.reads, diff.writes) == (6, 4)


class TestPageManager:
    def test_default_page_size(self):
        assert PageManager().page_size == DEFAULT_PAGE_SIZE

    def test_entries_per_page(self):
        pm = PageManager(page_size=4096)
        assert pm.entries_per_page(12) == 341
        assert pm.entries_per_page(8) == 512

    def test_oversized_entry_still_fits_one(self):
        pm = PageManager(page_size=4096)
        assert pm.entries_per_page(10_000) == 1

    def test_pages_for(self):
        pm = PageManager(page_size=4096)
        assert pm.pages_for(0, 12) == 0
        assert pm.pages_for(1, 12) == 1
        assert pm.pages_for(341, 12) == 1
        assert pm.pages_for(342, 12) == 2

    def test_charging_accumulates(self):
        pm = PageManager()
        pm.charge_read(3)
        pm.charge_write(2)
        pm.charge_read()
        assert pm.stats.reads == 4
        assert pm.stats.writes == 2

    def test_charge_sequential_read_returns_pages(self):
        pm = PageManager(page_size=4096)
        assert pm.charge_sequential_read(1000, 12) == 3
        assert pm.stats.reads == 3

    def test_snapshot_and_since(self):
        pm = PageManager()
        pm.charge_read(5)
        snap = pm.snapshot()
        pm.charge_read(2)
        pm.charge_write(1)
        delta = pm.since(snap)
        assert (delta.reads, delta.writes) == (2, 1)

    def test_snapshot_is_immutable_view(self):
        pm = PageManager()
        snap = pm.snapshot()
        pm.charge_read(10)
        assert snap.reads == 0

    def test_reset(self):
        pm = PageManager()
        pm.charge_read(5)
        pm.reset()
        assert pm.stats.total == 0

    def test_negative_charges_rejected(self):
        pm = PageManager()
        with pytest.raises(ValueError):
            pm.charge_read(-1)
        with pytest.raises(ValueError):
            pm.charge_write(-1)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            PageManager(page_size=4)
        pm = PageManager()
        with pytest.raises(ValueError):
            pm.entries_per_page(0)
        with pytest.raises(ValueError):
            pm.pages_for(-1, 12)


class TestChargeBucketScans:
    def test_zero_counts_are_free(self):
        pm = PageManager()
        assert pm.charge_bucket_scans([0, 0, 0], 12) == 0
        assert pm.stats.reads == 0

    def test_small_ranges_cost_one_page_each(self):
        pm = PageManager(page_size=4096)
        assert pm.charge_bucket_scans([1, 5, 300], 12) == 3

    def test_large_range_costs_ceil(self):
        pm = PageManager(page_size=4096)
        assert pm.charge_bucket_scans([700], 12) == 3  # ceil(700/341)

    def test_mixed(self):
        pm = PageManager(page_size=4096)
        pages = pm.charge_bucket_scans([0, 1, 341, 342], 12)
        assert pages == 0 + 1 + 1 + 2
        assert pm.stats.reads == pages

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PageManager().charge_bucket_scans([-1], 12)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=20),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_formula(self, counts, entry_bytes):
        pm = PageManager(page_size=4096)
        pages = pm.charge_bucket_scans(counts, entry_bytes)
        epp = max(1, 4096 // entry_bytes)
        expected = sum(max(1, -(-c // epp)) for c in counts if c > 0)
        assert pages == expected
        assert pm.stats.reads == expected
