"""Tests for repro.core.params — the Hoeffding-bound parameter machinery."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import (
    C2LSHParams,
    design_params,
    optimal_alpha,
    required_m,
)
from repro.hashing import (
    BitSamplingFamily,
    PStableFamily,
    SignRandomProjectionFamily,
)

P1, P2 = 0.7, 0.45
BETA, DELTA = 0.01, 0.01


class TestOptimalAlpha:
    def test_lies_strictly_between_p2_and_p1(self):
        alpha = optimal_alpha(P1, P2, BETA, DELTA)
        assert P2 < alpha < P1

    def test_balances_the_two_bounds(self):
        """At alpha*, the FN and FP Hoeffding exponents are equal."""
        alpha = optimal_alpha(P1, P2, BETA, DELTA)
        fn = math.log(1 / DELTA) / (2 * (P1 - alpha) ** 2)
        fp = math.log(2 / BETA) / (2 * (alpha - P2) ** 2)
        assert fn == pytest.approx(fp, rel=1e-9)

    def test_minimizes_m(self):
        alpha = optimal_alpha(P1, P2, BETA, DELTA)
        best = required_m(P1, P2, alpha, BETA, DELTA)
        span = P1 - P2
        for off in (-0.3, -0.1, 0.1, 0.3):
            other = alpha + off * span
            if P2 < other < P1:
                assert required_m(P1, P2, other, BETA, DELTA) >= best

    def test_symmetric_budgets_give_midpoint(self):
        """ln(2/beta) == ln(1/delta) => z = 1 => alpha = (p1+p2)/2."""
        beta = 2 * math.exp(-5.0)
        delta = math.exp(-5.0)
        alpha = optimal_alpha(P1, P2, beta, delta)
        assert alpha == pytest.approx((P1 + P2) / 2, rel=1e-9)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            optimal_alpha(0.4, 0.7, BETA, DELTA)  # p1 < p2
        with pytest.raises(ValueError):
            optimal_alpha(P1, P2, 0.0, DELTA)
        with pytest.raises(ValueError):
            optimal_alpha(P1, P2, BETA, 1.5)

    @given(st.floats(min_value=0.05, max_value=0.6),
           st.floats(min_value=0.05, max_value=0.35),
           st.floats(min_value=1e-4, max_value=0.5),
           st.floats(min_value=1e-4, max_value=0.5))
    @settings(max_examples=80, deadline=None)
    def test_always_inside_interval(self, p2, gap, beta, delta):
        p1 = p2 + gap
        alpha = optimal_alpha(p1, p2, beta, delta)
        assert p2 < alpha < p1


class TestRequiredM:
    def test_satisfies_both_bounds(self):
        alpha = optimal_alpha(P1, P2, BETA, DELTA)
        m = required_m(P1, P2, alpha, BETA, DELTA)
        assert math.exp(-2 * m * (P1 - alpha) ** 2) <= DELTA + 1e-12
        assert math.exp(-2 * m * (alpha - P2) ** 2) <= BETA / 2 + 1e-12

    def test_smaller_delta_needs_more_functions(self):
        alpha = optimal_alpha(P1, P2, BETA, DELTA)
        assert required_m(P1, P2, alpha, BETA, 1e-6) \
            > required_m(P1, P2, alpha, BETA, 0.1)

    def test_smaller_beta_needs_more_functions(self):
        alpha = (P1 + P2) / 2
        assert required_m(P1, P2, alpha, 1e-6, DELTA) \
            > required_m(P1, P2, alpha, 0.1, DELTA)

    def test_wider_gap_needs_fewer_functions(self):
        assert required_m(0.9, 0.2, 0.55, BETA, DELTA) \
            < required_m(0.6, 0.5, 0.55, BETA, DELTA)

    def test_alpha_outside_interval_rejected(self):
        with pytest.raises(ValueError):
            required_m(P1, P2, P1 + 0.01, BETA, DELTA)
        with pytest.raises(ValueError):
            required_m(P1, P2, P2 - 0.01, BETA, DELTA)


class TestC2LSHParams:
    def make(self, **overrides):
        kwargs = dict(n=10_000, c=2, w=2.0, p1=P1, p2=P2, alpha=0.55, m=100,
                      beta=0.01, delta=0.01)
        kwargs.update(overrides)
        return C2LSHParams(**kwargs)

    def test_l_defaults_to_ceil_alpha_m(self):
        params = self.make(alpha=0.55, m=100)
        assert params.l == 55
        params = self.make(alpha=0.551, m=100)
        assert params.l == 56

    def test_explicit_l_is_kept(self):
        assert self.make(l=60).l == 60

    def test_false_positive_budget(self):
        assert self.make(beta=0.01, n=10_000).false_positive_budget == 100

    def test_bounds_are_probabilities(self):
        params = self.make()
        assert 0 < params.false_negative_bound < 1
        assert 0 < params.false_positive_bound < 1

    def test_rho_exposed(self):
        assert 0 < self.make().rho < 1

    def test_success_probability(self):
        assert self.make(delta=0.01).success_probability \
            == pytest.approx(0.49)

    def test_describe_mentions_key_fields(self):
        text = self.make().describe()
        assert "m=100" in text and "c=2" in text

    def test_non_integer_c_rejected(self):
        with pytest.raises(ValueError):
            self.make(c=1)

    def test_alpha_outside_interval_rejected(self):
        with pytest.raises(ValueError):
            self.make(alpha=0.8)

    def test_bad_l_rejected(self):
        with pytest.raises(ValueError):
            self.make(l=101)

    def test_bad_n_and_m_rejected(self):
        with pytest.raises(ValueError):
            self.make(n=0)
        with pytest.raises(ValueError):
            self.make(m=0)


class TestDesignParams:
    def test_euclidean_roundtrip(self):
        family = PStableFamily(dim=20, c=2)
        params = design_params(5000, family, c=2)
        assert params.n == 5000
        assert params.m >= 1
        assert 1 <= params.l <= params.m
        assert params.beta == pytest.approx(100 / 5000)

    def test_beta_clamped_for_tiny_n(self):
        family = PStableFamily(dim=4, c=2)
        params = design_params(50, family, c=2)
        assert params.beta <= 0.5

    def test_m_grows_with_n(self):
        """Larger n means smaller beta = 100/n, hence more functions."""
        family = PStableFamily(dim=8, c=2)
        small = design_params(1_000, family, c=2)
        large = design_params(1_000_000, family, c=2)
        assert large.m > small.m

    def test_overrides_respected(self):
        family = PStableFamily(dim=8, c=2)
        p1, p2 = family.probabilities(2)
        alpha = (p1 + p2) / 2
        params = design_params(1000, family, c=2, m=300, alpha=alpha)
        assert params.m == 300
        assert params.alpha == alpha

    def test_angular_family_supported(self):
        params = design_params(2000, SignRandomProjectionFamily(dim=16), c=2)
        assert 0 < params.p2 < params.p1 < 1

    def test_hamming_family_supported(self):
        params = design_params(2000, BitSamplingFamily(dim=64), c=2)
        assert 0 < params.p2 < params.p1 < 1

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            design_params(0, PStableFamily(dim=4, c=2))

    @given(st.integers(min_value=100, max_value=10**7))
    @settings(max_examples=30, deadline=None)
    def test_designed_l_always_valid(self, n):
        family = PStableFamily(dim=8, w=2.0)
        params = design_params(n, family, c=2)
        assert 1 <= params.l <= params.m
        assert params.p2 < params.alpha < params.p1
