"""Tests for index persistence and the (R, c)-NN decision query."""

import numpy as np
import pytest

from repro import C2LSH, PageManager
from repro.core import load_c2lsh, save_c2lsh
from repro.hashing import SignRandomProjectionFamily


class TestPersistence:
    def test_roundtrip_preserves_answers(self, clustered, tmp_path):
        data, queries = clustered
        index = C2LSH(c=2, seed=0).fit(data)
        path = tmp_path / "index.npz"
        save_c2lsh(index, path)
        loaded = load_c2lsh(path)
        for q in queries[:5]:
            a = index.query(q, k=5)
            b = loaded.query(q, k=5)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.distances, b.distances)

    def test_roundtrip_preserves_parameters(self, tiny, tmp_path):
        data, _ = tiny
        index = C2LSH(c=3, seed=1, delta=0.05).fit(data)
        path = tmp_path / "index.npz"
        save_c2lsh(index, path)
        loaded = load_c2lsh(path)
        assert loaded.params == index.params
        assert loaded.base_radius == index.base_radius

    def test_load_with_page_manager_charges_build(self, tiny, tmp_path):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        path = tmp_path / "index.npz"
        save_c2lsh(index, path)
        pm = PageManager()
        loaded = load_c2lsh(path, page_manager=pm)
        assert pm.stats.writes > 0
        assert loaded.query(queries[0], k=2).stats.io_reads > 0

    def test_unfitted_index_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_c2lsh(C2LSH(seed=0), tmp_path / "x.npz")

    def test_custom_family_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((100, 8))
        data /= np.linalg.norm(data, axis=1, keepdims=True)
        index = C2LSH(family=SignRandomProjectionFamily(8), seed=0).fit(data)
        with pytest.raises(TypeError):
            save_c2lsh(index, tmp_path / "x.npz")

    def test_version_check(self, tiny, tmp_path):
        data, _ = tiny
        index = C2LSH(seed=0).fit(data)
        path = tmp_path / "index.npz"
        save_c2lsh(index, path)
        blob = dict(np.load(path))
        blob["format_version"] = np.array(99)
        np.savez_compressed(path, **blob)
        with pytest.raises(ValueError):
            load_c2lsh(path)


class TestQueryRadius:
    def test_finds_point_within_c_radius(self, clustered):
        data, _ = clustered
        index = C2LSH(c=2, seed=0).fit(data)
        query = data[5] + 0.01
        true_dist = float(np.linalg.norm(data[5] - query))
        result = index.query_radius(query, radius=max(true_dist, 0.1) * 2)
        assert len(result) >= 1
        assert np.all(result.distances <= 2 * max(true_dist, 0.1) * 2)

    def test_empty_when_nothing_near(self, clustered):
        data, _ = clustered
        index = C2LSH(c=2, seed=0).fit(data)
        far_query = data[0] + 1e6
        result = index.query_radius(far_query, radius=0.01)
        assert len(result) == 0

    def test_single_round_only(self, clustered):
        data, queries = clustered
        index = C2LSH(c=2, seed=0).fit(data)
        result = index.query_radius(queries[0], radius=5.0)
        assert result.stats.rounds == 1
        assert result.stats.terminated_by == "decision"

    def test_grid_radius_is_power_of_c(self, clustered):
        data, queries = clustered
        index = C2LSH(c=2, seed=0).fit(data)
        result = index.query_radius(queries[0], radius=3.7)
        r = result.stats.final_radius
        assert r & (r - 1) == 0  # power of two for c = 2

    def test_validation(self, clustered):
        data, queries = clustered
        index = C2LSH(c=2, seed=0).fit(data)
        with pytest.raises(ValueError):
            index.query_radius(queries[0], radius=0.0)
        with pytest.raises(ValueError):
            index.query_radius(queries[0], radius=1.0, k=0)
        with pytest.raises(ValueError):
            index.query_radius(np.zeros(99), radius=1.0)

    def test_non_rehashable_family_rejected(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((100, 8))
        data /= np.linalg.norm(data, axis=1, keepdims=True)
        index = C2LSH(family=SignRandomProjectionFamily(8), seed=0).fit(data)
        with pytest.raises(ValueError):
            index.query_radius(data[0], radius=0.5)

    def test_io_accounted(self, tiny):
        data, queries = tiny
        pm = PageManager()
        index = C2LSH(seed=0, page_manager=pm).fit(data)
        result = index.query_radius(queries[0], radius=10.0)
        assert result.stats.io_reads > 0


class TestQALSHPersistence:
    """Save/load round-trips for the query-aware extension."""

    def test_roundtrip_preserves_answers(self, clustered, tmp_path):
        import numpy as np
        from repro import QALSH
        from repro.core import load_qalsh, save_qalsh

        data, queries = clustered
        index = QALSH(c=2, seed=0).fit(data)
        path = tmp_path / "qalsh.npz"
        save_qalsh(index, path)
        loaded = load_qalsh(path)
        for q in queries[:5]:
            a = index.query(q, k=5)
            b = loaded.query(q, k=5)
            assert np.array_equal(a.ids, b.ids)

    def test_parameters_preserved(self, tiny, tmp_path):
        from repro import QALSH
        from repro.core import load_qalsh, save_qalsh

        data, _ = tiny
        index = QALSH(c=2.5, seed=1, delta=0.05).fit(data)
        path = tmp_path / "qalsh.npz"
        save_qalsh(index, path)
        loaded = load_qalsh(path)
        assert loaded.m == index.m
        assert loaded.l == index.l
        assert loaded.c == index.c

    def test_kind_mismatch_rejected(self, tiny, tmp_path):
        import pytest
        from repro import C2LSH, QALSH
        from repro.core import load_c2lsh, load_qalsh, save_c2lsh, save_qalsh

        data, _ = tiny
        c2 = tmp_path / "c2.npz"
        qa = tmp_path / "qa.npz"
        save_c2lsh(C2LSH(seed=0).fit(data), c2)
        save_qalsh(QALSH(seed=0).fit(data), qa)
        with pytest.raises(ValueError):
            load_qalsh(c2)
        with pytest.raises(ValueError):
            load_c2lsh(qa)

    def test_unfitted_rejected(self, tmp_path):
        import pytest
        from repro import QALSH
        from repro.core import save_qalsh

        with pytest.raises(ValueError):
            save_qalsh(QALSH(seed=0), tmp_path / "x.npz")

    def test_load_with_page_manager(self, tiny, tmp_path):
        from repro import PageManager, QALSH
        from repro.core import load_qalsh, save_qalsh

        data, queries = tiny
        path = tmp_path / "qalsh.npz"
        save_qalsh(QALSH(seed=0).fit(data), path)
        pm = PageManager()
        loaded = load_qalsh(path, page_manager=pm)
        assert pm.stats.writes > 0
        assert loaded.query(queries[0], k=2).stats.io_reads > 0
