"""Tests for the ASCII chart renderer."""

import pytest

from repro.eval import AsciiChart


def chart(**kwargs):
    defaults = dict(width=40, height=10, title="t", x_label="k",
                    y_label="io")
    defaults.update(kwargs)
    return AsciiChart(**defaults)


class TestAsciiChart:
    def test_renders_title_axes_and_legend(self):
        c = chart()
        c.add_series("a", [1, 2, 3], [1, 2, 3])
        out = c.render()
        assert out.splitlines()[0] == "t"
        assert "o a" in out
        assert "k" in out and "io" in out

    def test_markers_differ_per_series(self):
        c = chart()
        c.add_series("a", [1], [1])
        c.add_series("b", [2], [2])
        out = c.render()
        assert "o a" in out and "x b" in out

    def test_extreme_points_land_on_borders(self):
        c = chart()
        c.add_series("a", [0, 10], [0, 10])
        lines = c.render().splitlines()
        plot = [line for line in lines if "|" in line]
        # Max y on the first plot row, min y on the last.
        assert "o" in plot[0]
        assert "o" in plot[-1]

    def test_log_axis_rejects_nonpositive(self):
        c = chart(y_log=True)
        with pytest.raises(ValueError):
            c.add_series("a", [1, 2], [0.0, 2.0])

    def test_log_axis_spreads_decades(self):
        c = chart(y_log=True)
        c.add_series("a", [1, 2, 3], [1, 10, 100])
        lines = [line for line in c.render().splitlines() if "|" in line]
        rows_with_marker = [i for i, line in enumerate(lines)
                            if "o" in line]
        # Three decades land on three distinct, evenly spread rows.
        assert len(rows_with_marker) == 3
        gaps = [b - a for a, b in zip(rows_with_marker,
                                      rows_with_marker[1:])]
        assert max(gaps) - min(gaps) <= 1

    def test_constant_series_renders(self):
        c = chart()
        c.add_series("flat", [1, 2, 3], [5, 5, 5])
        assert "flat" in c.render()

    def test_single_point(self):
        c = chart()
        c.add_series("dot", [3], [7])
        assert "o" in c.render()

    def test_render_without_series_rejected(self):
        with pytest.raises(ValueError):
            chart().render()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            chart().add_series("a", [1, 2], [1])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            chart().add_series("a", [], [])

    def test_too_small_area_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart(width=2, height=2)

    def test_print(self, capsys):
        c = chart()
        c.add_series("a", [1], [1])
        c.print()
        assert "a" in capsys.readouterr().out
