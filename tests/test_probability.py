"""Tests for repro.hashing.probability — the analytic collision models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.probability import (
    angular_collision_probability,
    choose_w,
    hamming_collision_probability,
    pstable_collision_probability,
    rho,
)


class TestPStableCollisionProbability:
    def test_zero_distance_collides_surely(self):
        assert pstable_collision_probability(0.0, w=1.0) == 1.0

    def test_scalar_returns_float(self):
        p = pstable_collision_probability(1.0, w=2.0)
        assert isinstance(p, float)
        assert 0.0 < p < 1.0

    def test_array_input_preserves_shape(self):
        s = np.array([0.5, 1.0, 2.0, 4.0])
        p = pstable_collision_probability(s, w=1.5)
        assert p.shape == s.shape

    def test_monotonically_decreasing_in_distance(self):
        s = np.linspace(0.01, 20.0, 200)
        p = pstable_collision_probability(s, w=2.0)
        assert np.all(np.diff(p) < 0)

    def test_monotonically_increasing_in_width(self):
        widths = np.linspace(0.1, 10.0, 50)
        p = [pstable_collision_probability(1.0, w) for w in widths]
        assert all(a < b for a, b in zip(p, p[1:]))

    def test_scale_invariance(self):
        """p depends only on w/s: doubling both leaves p unchanged."""
        a = pstable_collision_probability(1.0, w=2.0)
        b = pstable_collision_probability(3.0, w=6.0)
        assert a == pytest.approx(b, rel=1e-12)

    def test_far_distance_probability_vanishes(self):
        assert pstable_collision_probability(1e6, w=1.0) < 1e-5

    def test_known_value_w1_s1(self):
        """Spot value computed from the closed form (Datar et al.)."""
        from scipy.special import ndtr
        t = 1.0
        expected = 1 - 2 * ndtr(-t) \
            - 2 / (math.sqrt(2 * math.pi) * t) * (1 - math.exp(-0.5))
        assert pstable_collision_probability(1.0, 1.0) == pytest.approx(
            expected, rel=1e-12)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            pstable_collision_probability(-1.0, w=1.0)

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError):
            pstable_collision_probability(1.0, w=0.0)
        with pytest.raises(ValueError):
            pstable_collision_probability(1.0, w=-2.0)

    @given(st.floats(min_value=1e-3, max_value=1e3),
           st.floats(min_value=1e-3, max_value=1e2))
    @settings(max_examples=60, deadline=None)
    def test_always_a_probability(self, s, w):
        p = pstable_collision_probability(s, w)
        assert 0.0 <= p <= 1.0


class TestAngularCollisionProbability:
    def test_zero_angle(self):
        assert angular_collision_probability(0.0) == 1.0

    def test_opposite_vectors(self):
        assert angular_collision_probability(math.pi) == pytest.approx(0.0)

    def test_orthogonal(self):
        assert angular_collision_probability(math.pi / 2) == pytest.approx(0.5)

    def test_vectorized(self):
        theta = np.array([0.0, math.pi / 2, math.pi])
        p = angular_collision_probability(theta)
        assert np.allclose(p, [1.0, 0.5, 0.0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            angular_collision_probability(-0.1)
        with pytest.raises(ValueError):
            angular_collision_probability(3.5)


class TestHammingCollisionProbability:
    def test_zero_distance(self):
        assert hamming_collision_probability(0, dim=16) == 1.0

    def test_full_distance(self):
        assert hamming_collision_probability(16, dim=16) == 0.0

    def test_linear_in_distance(self):
        assert hamming_collision_probability(4, dim=16) == pytest.approx(0.75)

    def test_vectorized(self):
        p = hamming_collision_probability(np.array([0, 8, 16]), dim=16)
        assert np.allclose(p, [1.0, 0.5, 0.0])

    def test_bad_dim_rejected(self):
        with pytest.raises(ValueError):
            hamming_collision_probability(1, dim=0)

    def test_out_of_range_distance_rejected(self):
        with pytest.raises(ValueError):
            hamming_collision_probability(17, dim=16)
        with pytest.raises(ValueError):
            hamming_collision_probability(-1, dim=16)


class TestRho:
    def test_known_ordering(self):
        """Better separation (smaller p2) lowers rho."""
        assert rho(0.7, 0.3) < rho(0.7, 0.5)

    def test_identity_case(self):
        assert rho(0.5, 0.25) == pytest.approx(0.5)

    def test_invalid_probabilities_rejected(self):
        for p1, p2 in [(0.3, 0.7), (0.5, 0.5), (1.0, 0.5), (0.5, 0.0)]:
            with pytest.raises(ValueError):
                rho(p1, p2)

    @given(st.floats(min_value=0.05, max_value=0.90),
           st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_rho_below_one_when_sensitive(self, p2, gap):
        p1 = min(0.99, p2 + gap * (1 - p2) + 1e-6)
        if p1 <= p2:
            return
        assert 0.0 < rho(p1, p2) < 1.0


class TestChooseW:
    def test_returns_positive_width(self):
        assert choose_w(2.0) > 0

    def test_is_a_local_minimum_of_rho(self):
        w = choose_w(2.0)

        def r(width):
            return rho(pstable_collision_probability(1.0, width),
                       pstable_collision_probability(2.0, width))

        assert r(w) <= r(w * 1.2) + 1e-9
        assert r(w) <= r(w * 0.8) + 1e-9

    def test_larger_c_changes_width(self):
        assert choose_w(2.0) != choose_w(4.0)

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            choose_w(1.0)
        with pytest.raises(ValueError):
            choose_w(0.5)
