"""Tests for the QALSH query-aware extension."""

import math

import numpy as np
import pytest

from repro import QALSH, PageManager
from repro.core.qalsh import qalsh_collision_probability, qalsh_optimal_w
from repro.data import exact_knn


class TestCollisionProbability:
    def test_zero_distance(self):
        assert qalsh_collision_probability(0.0, w=2.0) == 1.0

    def test_monotone_decreasing(self):
        # ndtr saturates to exactly 1.0 for tiny s, so require non-increase
        # everywhere and strict decrease once out of the saturated regime.
        s = np.linspace(0.01, 10, 100)
        p = qalsh_collision_probability(s, w=2.0)
        assert np.all(np.diff(p) <= 0)
        assert np.all(np.diff(p[s > 0.5]) < 0)

    def test_scale_invariance_in_radius(self):
        """p(s, R) depends only on s / R."""
        a = qalsh_collision_probability(1.0, w=2.0, radius=1.0)
        b = qalsh_collision_probability(3.0, w=2.0, radius=3.0)
        assert a == pytest.approx(b, rel=1e-12)

    def test_known_value(self):
        from scipy.special import ndtr
        expected = 2 * ndtr(1.0) - 1  # w=2, s=1 -> t = 1
        assert qalsh_collision_probability(1.0, w=2.0) == pytest.approx(
            expected, rel=1e-12)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            qalsh_collision_probability(1.0, w=0.0)
        with pytest.raises(ValueError):
            qalsh_collision_probability(-1.0, w=1.0)
        with pytest.raises(ValueError):
            qalsh_collision_probability(1.0, w=1.0, radius=0.0)


class TestOptimalW:
    def test_published_formula(self):
        c = 2.0
        expected = math.sqrt(8 * c * c * math.log(c) / (c * c - 1))
        assert qalsh_optimal_w(c) == pytest.approx(expected)

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            qalsh_optimal_w(1.0)


class TestQALSHIndex:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            QALSH(c=1.0)

    def test_unfitted_query_rejected(self):
        with pytest.raises(RuntimeError):
            QALSH(seed=0).query(np.zeros(4))

    def test_fit_sets_parameters(self, tiny):
        data, _ = tiny
        index = QALSH(seed=0).fit(data)
        assert index.m >= 1
        assert 1 <= index.l <= index.m
        assert index.p2 < index.alpha < index.p1

    def test_fractional_c_supported(self, clustered):
        data, queries = clustered
        index = QALSH(c=1.5, seed=0).fit(data)
        result = index.query(queries[0], k=5)
        assert len(result) == 5

    def test_exact_match_found(self, clustered):
        data, _ = clustered
        index = QALSH(seed=0).fit(data)
        result = index.query(data[42], k=1)
        assert result.ids[0] == 42

    def test_high_recall_on_clustered_data(self, clustered):
        data, queries = clustered
        index = QALSH(c=2, seed=0).fit(data)
        true_ids, _ = exact_knn(data, queries, 10)
        hits = 0
        for q, truth in zip(queries, true_ids):
            got = index.query(q, k=10)
            hits += len(set(got.ids.tolist()) & set(truth.tolist()))
        assert hits / (10 * len(queries)) > 0.8

    def test_uses_fewer_functions_than_c2lsh(self, clustered):
        """Query-aware windows have a wider p1-p2 gap, so m shrinks —
        QALSH's headline improvement over C2LSH."""
        from repro import C2LSH
        data, _ = clustered
        qalsh = QALSH(c=2, seed=0).fit(data)
        c2lsh = C2LSH(c=2, seed=0).fit(data)
        assert qalsh.m < c2lsh.params.m

    def test_io_accounting(self, tiny):
        data, queries = tiny
        pm = PageManager()
        index = QALSH(seed=0, page_manager=pm).fit(data)
        assert pm.stats.writes > 0
        result = index.query(queries[0], k=3)
        assert result.stats.io_reads >= result.stats.candidates
        assert index.index_pages() == index.m * pm.pages_for(
            data.shape[0], 12)

    def test_query_validation(self, tiny):
        data, _ = tiny
        index = QALSH(seed=0).fit(data)
        with pytest.raises(ValueError):
            index.query(np.zeros(9))
        with pytest.raises(ValueError):
            index.query(np.zeros(8), k=0)

    def test_batch(self, tiny):
        data, queries = tiny
        index = QALSH(seed=0).fit(data)
        batch = index.query_batch(queries, k=3)
        assert len(batch) == len(queries)

    def test_determinism(self, tiny):
        data, queries = tiny
        a = QALSH(seed=4).fit(data).query(queries[0], k=5)
        b = QALSH(seed=4).fit(data).query(queries[0], k=5)
        assert np.array_equal(a.ids, b.ids)

    def test_results_sorted(self, tiny):
        data, queries = tiny
        index = QALSH(seed=0).fit(data)
        for q in queries:
            assert np.all(np.diff(index.query(q, k=6).distances) >= 0)

    def test_termination_labels(self, clustered):
        data, queries = clustered
        index = QALSH(seed=0).fit(data)
        for q in queries[:5]:
            assert index.query(q, k=5).stats.terminated_by in {
                "T1", "T2", "exhausted", "fallback"}
