"""Chaos suite: fault injection, query budgets, crash-safe persistence.

The sweep seed is adjustable from the environment (``REPRO_CHAOS_SEED``)
so CI can run the probabilistic cases over a matrix of seeds; every test
stays deterministic for a fixed seed value.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import (
    C2LSH,
    CorruptIndexError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PageManager,
    QALSH,
    QueryBudget,
    RetryPolicy,
    TransientIOError,
)
from repro.core import load_c2lsh, save_c2lsh
from repro.obs import MetricsRegistry
from repro.storage.btree import BPlusTree

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _plan(*rules):
    return FaultPlan(tuple(rules))


# --------------------------------------------------------------------------
# fault plans and rules
# --------------------------------------------------------------------------

class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("bucket_scan", "explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("bucket_scan", "error", probability=1.5)

    def test_bad_cadence_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("bucket_scan", "error", every=0)
        with pytest.raises(ValueError):
            FaultRule("bucket_scan", "error", start_after=-1)
        with pytest.raises(ValueError):
            FaultRule("bucket_scan", "error", max_triggers=0)

    def test_unknown_corruption_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("data_read", "corrupt", mode="scramble")

    def test_non_rule_entries_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(("not a rule",))

    def test_dict_roundtrip(self):
        plan = _plan(
            FaultRule("bucket_scan", "error", every=3, max_triggers=2),
            FaultRule("data_read", "corrupt", mode="bias", amount=0.5),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_bare_list(self):
        plan = FaultPlan.from_dict([{"site": "*", "kind": "latency",
                                     "latency_s": 0.0}])
        assert plan.rules[0].site == "*"

    def test_wildcard_matches_everything(self):
        rule = FaultRule("*", "error")
        assert rule.matches("bucket_scan")
        assert rule.matches("btree_descend")


# --------------------------------------------------------------------------
# the injector itself
# --------------------------------------------------------------------------

class TestFaultInjector:
    def test_empty_plan_is_noop(self):
        fi = FaultInjector()
        for _ in range(10):
            assert fi.guard("bucket_scan") == 0

    def test_every_cadence(self):
        fi = FaultInjector(_plan(FaultRule("s", "error", every=3)))
        outcomes = []
        for _ in range(6):
            try:
                fi.check("s")
                outcomes.append("ok")
            except TransientIOError:
                outcomes.append("err")
        assert outcomes == ["ok", "ok", "err", "ok", "ok", "err"]

    def test_start_after_and_max_triggers(self):
        fi = FaultInjector(_plan(FaultRule("s", "error", every=1,
                                           start_after=2, max_triggers=1)))
        fi.check("s")
        fi.check("s")
        with pytest.raises(TransientIOError):
            fi.check("s")
        fi.check("s")  # trigger budget spent

    def test_guard_recovers_with_retry(self):
        fi = FaultInjector(_plan(FaultRule("s", "error", every=2)),
                           retry=RetryPolicy(max_retries=1))
        assert fi.guard("s") == 0          # op 1
        assert fi.guard("s") == 1          # op 2 fails, op 3 succeeds
        assert fi.snapshot()["reliability.retry.s"] == 1

    def test_guard_gives_up_after_budget(self):
        fi = FaultInjector(_plan(FaultRule("s", "error", every=1)),
                           retry=RetryPolicy(max_retries=2))
        with pytest.raises(TransientIOError) as err:
            fi.guard("s")
        assert err.value.site == "s"
        snap = fi.snapshot()
        assert snap["reliability.retry.s"] == 2
        assert snap["reliability.giveup.s"] == 1

    def test_probabilistic_rules_are_seed_deterministic(self):
        def run(seed):
            fi = FaultInjector(
                _plan(FaultRule("s", "error", probability=0.5)),
                seed=seed, retry=RetryPolicy(max_retries=0))
            hits = []
            for _ in range(50):
                try:
                    fi.check("s")
                    hits.append(0)
                except TransientIOError:
                    hits.append(1)
            return hits

        assert run(CHAOS_SEED) == run(CHAOS_SEED)
        assert 0 < sum(run(CHAOS_SEED)) < 50

    def test_reset_replays_identically(self):
        fi = FaultInjector(_plan(FaultRule("s", "error", probability=0.4)),
                           seed=CHAOS_SEED, retry=RetryPolicy(max_retries=0))

        def run():
            hits = []
            for _ in range(30):
                try:
                    fi.check("s")
                    hits.append(0)
                except TransientIOError:
                    hits.append(1)
            return hits

        first = run()
        fi.reset()
        assert run() == first

    def test_corrupt_zero_and_bias(self):
        data = np.ones((3, 4))
        zero = FaultInjector(_plan(FaultRule("d", "corrupt", mode="zero")))
        out = zero.corrupt("d", data)
        assert np.all(out == 0.0)
        assert np.all(data == 1.0)  # caller's array untouched
        bias = FaultInjector(_plan(FaultRule("d", "corrupt", mode="bias",
                                             amount=2.5)))
        assert np.allclose(bias.corrupt("d", data), 3.5)

    def test_corrupt_noise_is_seed_deterministic(self):
        data = np.ones((2, 3))
        plan = _plan(FaultRule("d", "corrupt", mode="noise", amount=0.1))
        a = FaultInjector(plan, seed=CHAOS_SEED).corrupt("d", data)
        b = FaultInjector(plan, seed=CHAOS_SEED).corrupt("d", data)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, data)

    def test_corrupt_without_matching_rule_returns_same_object(self):
        fi = FaultInjector(_plan(FaultRule("other", "corrupt")))
        data = np.ones(4)
        assert fi.corrupt("d", data) is data

    def test_disabled_injector_is_inert(self):
        fi = FaultInjector(_plan(FaultRule("*", "error", every=1)))
        fi.enabled = False
        assert fi.guard("s") == 0
        data = np.ones(3)
        assert fi.corrupt("s", data) is data

    def test_metrics_registry_is_shared(self):
        reg = MetricsRegistry()
        fi = FaultInjector(_plan(FaultRule("s", "error", every=1)),
                           retry=RetryPolicy(max_retries=1), metrics=reg)
        with pytest.raises(TransientIOError):
            fi.guard("s")
        assert reg.snapshot()["reliability.giveup.s"] == 1


# --------------------------------------------------------------------------
# faults flowing through the storage charge sites
# --------------------------------------------------------------------------

def _fit_c2lsh(data, plan=None, retry=None, use_t1=True):
    """A C2LSH whose queries walk several radius levels.

    The base radius is deliberately shrunk (the A2-ablation trick) so
    searches expand through multiple rounds: budgets then have round
    boundaries to trip at, and fault rules see a realistic stream of
    charge-site operations instead of one bulk charge per query.
    """
    from repro.core.scaling import estimate_base_radius

    unit = estimate_base_radius(data, rng=0) / 8.0
    fi = None
    if plan is not None:
        fi = FaultInjector(plan, seed=CHAOS_SEED, retry=retry)
    pm = PageManager(fault_injector=fi)
    index = C2LSH(c=2, seed=0, base_radius=unit, use_t1=use_t1,
                  page_manager=pm).fit(data)
    return index, fi


class TestChargeSiteFaults:
    def test_transient_bucket_scan_errors_are_retried(self, clustered):
        data, queries = clustered
        clean, _ = _fit_c2lsh(data)
        faulty, fi = _fit_c2lsh(
            data, _plan(FaultRule("bucket_scan", "error", every=5)))
        for q in queries[:3]:
            a = clean.query(q, k=5)
            b = faulty.query(q, k=5)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.distances, b.distances)
        assert fi.snapshot()["reliability.retry.bucket_scan"] >= 1

    def test_retries_do_not_change_io_accounting(self, clustered):
        data, queries = clustered
        clean, _ = _fit_c2lsh(data)
        faulty, _ = _fit_c2lsh(
            data, _plan(FaultRule("bucket_scan", "error", every=5)))
        a = clean.query(queries[0], k=5)
        b = faulty.query(queries[0], k=5)
        assert a.stats.io_reads == b.stats.io_reads

    def test_persistent_fault_escapes_after_retries(self, clustered):
        data, queries = clustered
        faulty, fi = _fit_c2lsh(
            data,
            _plan(FaultRule("bucket_scan", "error", every=1,
                            start_after=20)),
        )
        with pytest.raises(TransientIOError):
            for q in queries:
                faulty.query(q, k=5)
        assert fi.snapshot()["reliability.giveup.bucket_scan"] == 1

    def test_data_read_corruption_reaches_distances(self, clustered):
        data, queries = clustered
        clean, _ = _fit_c2lsh(data)
        faulty, fi = _fit_c2lsh(
            data, _plan(FaultRule("data_read", "corrupt", mode="bias",
                                  amount=100.0)))
        a = clean.query(queries[0], k=5)
        b = faulty.query(queries[0], k=5)
        assert fi.snapshot()["reliability.fault.data_read.corrupt"] >= 1
        assert not np.allclose(a.distances, b.distances)

    def test_latency_rule_does_not_change_results(self, clustered):
        data, queries = clustered
        clean, _ = _fit_c2lsh(data)
        slow, _ = _fit_c2lsh(
            data, _plan(FaultRule("*", "latency", latency_s=0.0)))
        a = clean.query(queries[0], k=5)
        b = slow.query(queries[0], k=5)
        assert np.array_equal(a.ids, b.ids)

    def test_btree_descend_faults(self):
        fi = FaultInjector(
            _plan(FaultRule("btree_descend", "error", every=2)),
            retry=RetryPolicy(max_retries=1))
        pm = PageManager(fault_injector=fi)
        tree = BPlusTree(list(range(256)), list(range(256)),
                         leaf_capacity=4, fanout=4, page_manager=pm)
        for key in (3, 77, 200):
            pos = tree.search_position(key)
            assert tree.key_at(pos) == key
        assert fi.snapshot()["reliability.retry.btree_descend"] >= 1

    def test_btree_descend_giveup_raises(self):
        fi = FaultInjector(
            _plan(FaultRule("btree_descend", "error", every=1)),
            retry=RetryPolicy(max_retries=1))
        pm = PageManager(fault_injector=fi)
        tree = BPlusTree(list(range(64)), list(range(64)),
                         leaf_capacity=4, fanout=4, page_manager=pm)
        with pytest.raises(TransientIOError):
            tree.search_position(10)

    def test_qalsh_under_faults(self, clustered):
        data, queries = clustered
        fi = FaultInjector(_plan(FaultRule("bucket_scan", "error", every=7)),
                           seed=CHAOS_SEED)
        clean = QALSH(c=2.0, seed=0, page_manager=PageManager()).fit(data)
        faulty = QALSH(c=2.0, seed=0,
                       page_manager=PageManager(fault_injector=fi)).fit(data)
        a = clean.query(queries[0], k=5)
        b = faulty.query(queries[0], k=5)
        assert np.array_equal(a.ids, b.ids)


# --------------------------------------------------------------------------
# batch vs sequential equivalence under identical fault plans
# --------------------------------------------------------------------------

class TestBatchFaultEquivalence:
    def _pair(self, data, plan):
        seq, _ = _fit_c2lsh(data, plan)
        bat, _ = _fit_c2lsh(data, plan)
        return seq, bat

    def test_equivalent_under_deterministic_corruption(self, clustered):
        data, queries = clustered
        plan = _plan(FaultRule("data_read", "corrupt", mode="bias",
                               amount=0.25))
        seq, bat = self._pair(data, plan)
        a = [seq.query(q, k=5) for q in queries]
        b = bat.query_batch(queries, k=5)
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.allclose(ra.distances, rb.distances)

    def test_equivalent_under_recovered_transients(self, clustered):
        data, queries = clustered
        plan = _plan(FaultRule("bucket_scan", "error", every=9))
        seq, bat = self._pair(data, plan)
        a = [seq.query(q, k=5) for q in queries]
        b = bat.query_batch(queries, k=5)
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.ids, rb.ids)


# --------------------------------------------------------------------------
# query budgets and graceful degradation
# --------------------------------------------------------------------------

def _multi_round_query(index, queries, k=5):
    """A held-out query whose unbudgeted search runs several rounds."""
    for q in queries:
        if index.query(q, k=k).stats.rounds >= 2:
            return q
    pytest.skip("no multi-round query in fixture")


class TestQueryBudget:
    def test_requires_at_least_one_cap(self):
        with pytest.raises(ValueError):
            QueryBudget()

    def test_rejects_non_positive_caps(self):
        with pytest.raises(ValueError):
            QueryBudget(deadline_s=0.0)
        with pytest.raises(ValueError):
            QueryBudget(max_io_pages=0)
        with pytest.raises(ValueError):
            QueryBudget(max_candidates=0)

    def test_io_budget_degrades_gracefully(self, clustered):
        data, queries = clustered
        index, _ = _fit_c2lsh(data)
        q = _multi_round_query(index, queries)
        result = index.query(q, k=5, budget=QueryBudget(max_io_pages=1))
        assert result.stats.degraded
        assert result.stats.budget_exhausted == "io_pages"
        assert result.stats.terminated_by == "budget"
        assert len(result) > 0
        assert np.all(np.isfinite(result.distances))

    def test_io_budget_degrades_on_batch_path(self, clustered):
        data, queries = clustered
        index, _ = _fit_c2lsh(data)
        results = index.query_batch(queries, k=5,
                                    budget=QueryBudget(max_io_pages=1))
        assert all(len(r) > 0 for r in results)
        degraded = [r for r in results if r.stats.degraded]
        assert degraded
        for r in degraded:
            assert r.stats.terminated_by == "budget"
            assert r.stats.budget_exhausted == "io_pages"

    def test_budget_path_equivalence(self, clustered):
        data, queries = clustered
        seq, _ = _fit_c2lsh(data)
        bat, _ = _fit_c2lsh(data)
        budget = QueryBudget(max_io_pages=1)
        a = [seq.query(q, k=5, budget=budget) for q in queries]
        b = bat.query_batch(queries, k=5, budget=budget)
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.ids, rb.ids)
            assert ra.stats.degraded == rb.stats.degraded
            assert ra.stats.budget_exhausted == rb.stats.budget_exhausted

    def test_degraded_result_is_deterministic(self, clustered):
        data, queries = clustered
        index, _ = _fit_c2lsh(data)
        q = _multi_round_query(index, queries)
        budget = QueryBudget(max_io_pages=1)
        a = index.query(q, k=5, budget=budget)
        b = index.query(q, k=5, budget=budget)
        assert np.array_equal(a.ids, b.ids)
        assert a.stats.final_radius == b.stats.final_radius

    def test_candidate_cap(self, clustered):
        data, queries = clustered
        # T1 disabled: the natural stop then needs the full false-positive
        # budget, so a 1-candidate cap reliably binds first.
        index, _ = _fit_c2lsh(data, use_t1=False)
        budget = QueryBudget(max_candidates=1)
        degraded = [index.query(q, k=5, budget=budget) for q in queries]
        hit = [r for r in degraded if r.stats.degraded]
        assert hit
        assert all(r.stats.budget_exhausted == "candidates" for r in hit)
        assert all(len(r) > 0 for r in hit)

    def test_deadline_cap(self, clustered):
        data, queries = clustered
        index, _ = _fit_c2lsh(data)
        q = _multi_round_query(index, queries)
        result = index.query(q, k=5, budget=QueryBudget(deadline_s=1e-9))
        assert result.stats.degraded
        assert result.stats.budget_exhausted == "deadline"
        assert len(result) > 0

    def test_generous_budget_is_bit_identical(self, clustered):
        data, queries = clustered
        index, _ = _fit_c2lsh(data)
        budget = QueryBudget(deadline_s=3600.0, max_io_pages=10**9,
                             max_candidates=10**9)
        for q in queries[:5]:
            a = index.query(q, k=5)
            b = index.query(q, k=5, budget=budget)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.distances, b.distances)
            assert not b.stats.degraded
            assert a.stats.terminated_by == b.stats.terminated_by
            assert a.stats.io_reads == b.stats.io_reads

    def test_achieved_radius_recorded(self, clustered):
        data, queries = clustered
        index, _ = _fit_c2lsh(data)
        q = _multi_round_query(index, queries)
        full = index.query(q, k=5)
        cut = index.query(q, k=5, budget=QueryBudget(max_io_pages=1))
        assert 1 <= cut.stats.final_radius <= full.stats.final_radius

    def test_qalsh_budget(self, clustered):
        from repro.core.scaling import estimate_base_radius

        data, queries = clustered
        unit = estimate_base_radius(data, rng=0) / 8.0
        index = QALSH(c=2.0, seed=0, base_radius=unit,
                      page_manager=PageManager()).fit(data)
        q = _multi_round_query(index, queries)
        result = index.query(q, k=5, budget=QueryBudget(max_io_pages=1))
        assert result.stats.degraded
        assert result.stats.terminated_by == "budget"
        assert len(result) > 0

    def test_budget_without_page_manager_io_cap_inert(self, clustered):
        data, queries = clustered
        index = C2LSH(c=2, seed=0).fit(data)  # no page manager
        result = index.query(queries[0], k=5,
                             budget=QueryBudget(max_io_pages=1))
        assert not result.stats.degraded


# --------------------------------------------------------------------------
# validation parity between the batch and sequential entry points
# --------------------------------------------------------------------------

class TestValidationParity:
    def test_c2lsh_batch_names_bad_row(self, tiny):
        data, queries = tiny
        index = C2LSH(c=2, seed=0).fit(data)
        bad = np.array(queries[:4], copy=True)
        bad[2, 3] = np.nan
        with pytest.raises(ValueError, match=r"queries\[2\].*non-finite"):
            index.query_batch(bad, k=2)

    def test_qalsh_batch_names_bad_row(self, tiny):
        data, queries = tiny
        index = QALSH(c=2.0, seed=0).fit(data)
        bad = np.array(queries[:4], copy=True)
        bad[1, 0] = np.inf
        with pytest.raises(ValueError, match=r"queries\[1\].*non-finite"):
            index.query_batch(bad, k=2)

    def test_batch_shape_message(self, tiny):
        data, _ = tiny
        index = C2LSH(c=2, seed=0).fit(data)
        with pytest.raises(ValueError, match=r"\(q, 8\)"):
            index.query_batch(np.zeros((3, 5)), k=1)

    def test_sequential_loop_path_validates_too(self, tiny):
        data, queries = tiny
        index = C2LSH(c=2, seed=0, incremental=False).fit(data)
        bad = np.array(queries[:3], copy=True)
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match=r"queries\[0\]"):
            index.query_batch(bad, k=2)


# --------------------------------------------------------------------------
# crash-safe persistence
# --------------------------------------------------------------------------

class TestPersistenceChaos:
    @pytest.fixture()
    def saved(self, tiny, tmp_path):
        data, queries = tiny
        index = C2LSH(c=2, seed=0).fit(data)
        path = tmp_path / "index.npz"
        save_c2lsh(index, path)
        return index, path, queries

    def test_mutated_array_named_in_error(self, saved):
        index, path, _ = saved
        blob = dict(np.load(path))
        blob["projections"] = blob["projections"] + 1e-3
        np.savez_compressed(path, **blob)
        with pytest.raises(CorruptIndexError) as err:
            load_c2lsh(path)
        assert err.value.section == "projections"
        assert "projections" in str(err.value)

    def test_truncated_file_rejected(self, saved):
        _, path, _ = saved
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptIndexError):
            load_c2lsh(path)

    def test_random_byte_flips_never_load_silently_wrong(self, saved):
        index, path, queries = saved
        baseline = index.query(queries[0], k=3)
        raw = bytearray(path.read_bytes())
        rng = np.random.default_rng(CHAOS_SEED)
        for _ in range(8):
            pos = int(rng.integers(0, len(raw)))
            flipped = bytearray(raw)
            flipped[pos] ^= 0xFF
            path.write_bytes(bytes(flipped))
            try:
                loaded = load_c2lsh(path)
            except CorruptIndexError:
                continue  # detected — the guarantee we want
            result = loaded.query(queries[0], k=3)
            assert np.array_equal(result.ids, baseline.ids)
            assert np.allclose(result.distances, baseline.distances)
        path.write_bytes(bytes(raw))

    def test_interrupted_save_leaves_previous_file_intact(
            self, saved, tiny, monkeypatch):
        index, path, queries = saved
        baseline = index.query(queries[0], k=3)
        import repro.core.persist as persist

        def explode(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(persist.os, "replace", explode)
        with pytest.raises(OSError):
            save_c2lsh(index, path)
        monkeypatch.undo()
        assert not list(path.parent.glob(".index-*"))  # temp cleaned up
        loaded = load_c2lsh(path)
        result = loaded.query(queries[0], k=3)
        assert np.array_equal(result.ids, baseline.ids)

    def test_kind_mismatch_names_section(self, tiny, tmp_path):
        from repro.core import load_qalsh

        data, _ = tiny
        path = tmp_path / "c2.npz"
        save_c2lsh(C2LSH(c=2, seed=0).fit(data), path)
        with pytest.raises(CorruptIndexError) as err:
            load_qalsh(path)
        assert err.value.section == "kind"

    def test_version_tamper_names_section(self, saved):
        _, path, _ = saved
        blob = dict(np.load(path))
        blob["format_version"] = np.array(99)
        np.savez_compressed(path, **blob)
        with pytest.raises(CorruptIndexError) as err:
            load_c2lsh(path)
        assert err.value.section == "format_version"

    def test_corrupt_index_error_is_value_error(self):
        err = CorruptIndexError("/tmp/x.npz", "data", "boom")
        assert isinstance(err, ValueError)
        assert err.path == "/tmp/x.npz"

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_c2lsh(tmp_path / "never-written.npz")

    def test_save_appends_npz_suffix(self, tiny, tmp_path):
        data, _ = tiny
        index = C2LSH(c=2, seed=0).fit(data)
        written = save_c2lsh(index, str(tmp_path / "plain"))
        assert written.endswith("plain.npz")
        assert load_c2lsh(written).params == index.params

    def test_qalsh_roundtrip_verified(self, tiny, tmp_path):
        from repro.core import load_qalsh, save_qalsh

        data, queries = tiny
        index = QALSH(c=2.0, seed=0).fit(data)
        path = tmp_path / "qalsh.npz"
        save_qalsh(index, path)
        blob = dict(np.load(path))
        blob["scalars"] = blob["scalars"] + 1.0
        np.savez_compressed(path, **blob)
        with pytest.raises(CorruptIndexError) as err:
            load_qalsh(path)
        assert err.value.section == "scalars"


# --------------------------------------------------------------------------
# harness resilience
# --------------------------------------------------------------------------

class TestHarnessResilience:
    def _patched(self, monkeypatch, experiments):
        import repro.eval.harness as harness

        monkeypatch.setattr(harness, "EXPERIMENTS", experiments)
        return harness

    def test_failed_experiment_writes_error_file(self, monkeypatch,
                                                 tmp_path, capsys):
        calls = []

        def ok(args):
            calls.append("ok")

        def boom(args):
            raise RuntimeError("synthetic failure")

        harness = self._patched(monkeypatch, {"boom": boom, "ok": ok})
        code = harness.main(["all", "--out-dir", str(tmp_path)])
        assert code == 1
        assert calls == ["ok"]  # the sweep kept going after the crash
        import json

        payload = json.loads((tmp_path / "boom_error.json").read_text())
        assert payload["error"] == "RuntimeError"
        assert payload["message"] == "synthetic failure"
        assert "Traceback" in payload["traceback"]

    def test_all_green_returns_zero(self, monkeypatch, tmp_path):
        harness = self._patched(monkeypatch, {"ok": lambda args: None})
        assert harness.main(["all", "--out-dir", str(tmp_path)]) == 0
        assert not list(tmp_path.glob("*_error.json"))

    def test_single_experiment_failure_is_contained(self, monkeypatch,
                                                    tmp_path, capsys):
        def boom(args):
            raise ValueError("nope")

        harness = self._patched(monkeypatch, {"boom": boom})
        assert harness.main(["boom", "--out-dir", str(tmp_path)]) == 1
        assert (tmp_path / "boom_error.json").exists()

    def test_keyboard_interrupt_propagates(self, monkeypatch, tmp_path):
        def interrupted(args):
            raise KeyboardInterrupt

        harness = self._patched(monkeypatch, {"boom": interrupted})
        with pytest.raises(KeyboardInterrupt):
            harness.main(["boom", "--out-dir", str(tmp_path)])
        assert not (tmp_path / "boom_error.json").exists()


class TestFlightOnGiveup:
    def test_giveup_writes_flight_postmortem(self, tmp_path):
        import json

        from repro.obs import FlightRecorder, flight

        mine = FlightRecorder(capacity=16, directory=str(tmp_path),
                              min_dump_interval_s=0.0)
        old = flight.install(mine)
        try:
            fi = FaultInjector(_plan(FaultRule("s", "error", every=1)),
                               retry=RetryPolicy(max_retries=1))
            with pytest.raises(TransientIOError):
                fi.guard("s")
        finally:
            flight.install(old)
        events = [e for e in mine.events() if e["kind"] == "retry_giveup"]
        assert events and events[0]["site"] == "s"
        assert events[0]["attempts"] == 2
        dumps = sorted(tmp_path.glob("flight_retry_giveup_*.json"))
        assert dumps
        payload = json.loads(dumps[0].read_text())
        assert payload["extra"] == {"site": "s"}
