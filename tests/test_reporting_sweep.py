"""Tests for table rendering and the experiment-runner helpers."""

import csv
import io

import numpy as np
import pytest

from repro import C2LSH, LinearScan
from repro.data import exact_knn
from repro.data.profiles import Dataset
from repro.eval import (
    Table,
    best_under_recall,
    format_table,
    grid,
    run_experiment,
    timed_build,
    timed_queries,
    write_csv,
)


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "v"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_title(self):
        out = format_table(["a"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestTable:
    def test_add_and_render(self):
        t = Table(["x", "y"], title="T")
        t.add(1, 2)
        t.add([3, 4])
        assert "T" in t.render()
        assert len(t.rows) == 2

    def test_add_validates_width(self):
        t = Table(["x", "y"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_print_to_stream(self):
        buf = io.StringIO()
        t = Table(["x"])
        t.add(5)
        t.print(file=buf)
        assert "5" in buf.getvalue()

    def test_save_csv(self, tmp_path):
        t = Table(["x", "y"])
        t.add(1, "a")
        path = tmp_path / "t.csv"
        t.save_csv(path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["x", "y"], ["1", "a"]]

    def test_write_csv_function(self, tmp_path):
        path = tmp_path / "w.csv"
        write_csv(path, ["h"], [[1], [2]])
        with open(path) as fh:
            assert len(list(csv.reader(fh))) == 3


class TestGrid:
    def test_cartesian_product(self):
        combos = list(grid(a=[1, 2], b=["x", "y"]))
        assert len(combos) == 4
        assert {"a": 2, "b": "x"} in combos

    def test_single_axis(self):
        assert list(grid(a=[1])) == [{"a": 1}]

    def test_empty(self):
        assert list(grid()) == [{}]


class TestRunners:
    @pytest.fixture()
    def dataset(self, tiny):
        data, queries = tiny
        return Dataset("tiny", data, queries, "test dataset")

    def test_timed_build_reports_time(self, dataset):
        report = timed_build(lambda: LinearScan(), dataset.data)
        assert report.build_time >= 0
        assert report.index.is_fitted

    def test_timed_queries_summary(self, dataset):
        index = LinearScan().fit(dataset.data)
        tids, tdists = exact_knn(dataset.data, dataset.queries, 3)
        summary = timed_queries(index, dataset.queries, 3, tids, tdists)
        assert summary.recall == 1.0
        assert summary.ratio == pytest.approx(1.0)
        assert summary.query_time > 0

    def test_run_experiment_record(self, dataset):
        tids, tdists = exact_knn(dataset.data, dataset.queries, 3)
        record = run_experiment("c2lsh", lambda: C2LSH(seed=0), dataset, 3,
                                tids, tdists, config={"c": 2})
        assert record.method == "c2lsh"
        assert record.dataset == "tiny"
        assert record.k == 3
        assert record.config == {"c": 2}
        assert 0 <= record.summary.recall <= 1

    def test_best_under_recall(self, dataset):
        tids, tdists = exact_knn(dataset.data, dataset.queries, 3)
        records = [
            run_experiment("linear", lambda: LinearScan(), dataset, 3,
                           tids, tdists),
            run_experiment("c2lsh", lambda: C2LSH(seed=0), dataset, 3,
                           tids, tdists),
        ]
        best = best_under_recall(records, 1.0,
                                 cost=lambda r: r.summary.candidates)
        assert best is not None
        assert best.summary.recall == 1.0

    def test_best_under_recall_none_when_unreachable(self, dataset):
        tids, tdists = exact_knn(dataset.data, dataset.queries, 3)
        records = [run_experiment("linear", lambda: LinearScan(), dataset,
                                  3, tids, tdists)]
        assert best_under_recall(records, 1.1) is None
