"""Tests for QueryResult / QueryStats containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import QueryResult, QueryStats


class TestQueryResult:
    def test_basic_construction(self):
        r = QueryResult(np.array([3, 1]), np.array([0.5, 1.5]))
        assert len(r) == 2
        assert r.stats.rounds == 0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            QueryResult(np.array([1, 2]), np.array([0.1]))

    def test_unsorted_distances_rejected(self):
        with pytest.raises(ValueError):
            QueryResult(np.array([1, 2]), np.array([2.0, 1.0]))

    def test_empty_result_allowed(self):
        r = QueryResult(np.empty(0, np.int64), np.empty(0))
        assert len(r) == 0


class TestFromCandidates:
    def test_selects_k_nearest(self):
        ids = np.array([10, 20, 30, 40])
        dists = np.array([4.0, 1.0, 3.0, 2.0])
        r = QueryResult.from_candidates(ids, dists, k=2)
        assert r.ids.tolist() == [20, 40]
        assert r.distances.tolist() == [1.0, 2.0]

    def test_fewer_candidates_than_k(self):
        r = QueryResult.from_candidates(np.array([5]), np.array([1.0]), k=10)
        assert len(r) == 1

    def test_stats_passed_through(self):
        stats = QueryStats(rounds=3)
        r = QueryResult.from_candidates(np.array([1]), np.array([0.0]), 1,
                                        stats)
        assert r.stats.rounds == 3

    def test_k_validated(self):
        with pytest.raises(ValueError):
            QueryResult.from_candidates(np.array([1]), np.array([0.0]), k=0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QueryResult.from_candidates(np.array([1, 2]), np.array([0.0]), 1)

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_full_sort(self, k, n, seed):
        rng = np.random.default_rng(seed)
        ids = rng.permutation(n)
        dists = rng.random(n)
        r = QueryResult.from_candidates(ids, dists, k)
        full = np.argsort(dists, kind="stable")[:min(k, n)]
        assert np.allclose(np.sort(r.distances), np.sort(dists[full]))
        assert np.all(np.diff(r.distances) >= 0)
        assert len(r) == min(k, n)
