"""Failure-injection tests: malformed and adversarial inputs.

Every index must reject non-finite inputs with a clear message (not hash
NaN into garbage buckets), and must behave sanely on degenerate-but-legal
data: duplicates, constant columns, a single cluster, extreme scales.
"""

import numpy as np
import pytest

from repro import (
    C2LSH,
    E2LSH,
    LinearScan,
    LSBForest,
    MultiProbeLSH,
    QALSH,
)
from repro.validation import as_data_matrix, as_query_vector, require_finite

ALL_INDEXES = [
    lambda: C2LSH(seed=0),
    lambda: QALSH(seed=0),
    lambda: E2LSH(K=4, L=4, seed=0),
    lambda: LSBForest(n_trees=2, seed=0),
    lambda: MultiProbeLSH(K=4, L=2, n_probes=4, seed=0),
    lambda: LinearScan(),
]

IDS = ["c2lsh", "qalsh", "e2lsh", "lsb", "mplsh", "linear"]


@pytest.fixture()
def good_data():
    return np.random.default_rng(0).standard_normal((300, 8))


class TestValidationHelpers:
    def test_require_finite_passes_clean(self):
        arr = np.ones(5)
        assert require_finite(arr, "x") is arr

    def test_require_finite_counts_bad_values(self):
        arr = np.array([1.0, np.nan, np.inf])
        with pytest.raises(ValueError, match="2 non-finite"):
            require_finite(arr, "x")

    def test_as_data_matrix_rejects_empty_dim(self):
        with pytest.raises(ValueError):
            as_data_matrix(np.empty((5, 0)))

    def test_as_query_vector_shape(self):
        with pytest.raises(ValueError):
            as_query_vector(np.zeros(3), 4)


@pytest.mark.parametrize("factory", ALL_INDEXES, ids=IDS)
class TestNonFiniteInputs:
    def test_nan_in_fit_rejected(self, factory, good_data):
        bad = good_data.copy()
        bad[5, 3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            factory().fit(bad)

    def test_inf_in_fit_rejected(self, factory, good_data):
        bad = good_data.copy()
        bad[0, 0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            factory().fit(bad)

    def test_nan_query_rejected(self, factory, good_data):
        index = factory().fit(good_data)
        q = np.full(8, np.nan)
        with pytest.raises(ValueError, match="non-finite"):
            index.query(q, k=1)


@pytest.mark.parametrize("factory", ALL_INDEXES, ids=IDS)
class TestDegenerateData:
    def test_heavy_duplicates(self, factory):
        rng = np.random.default_rng(1)
        base = rng.standard_normal((10, 8))
        data = np.repeat(base, 40, axis=0)  # 400 points, 10 distinct
        index = factory().fit(data)
        result = index.query(base[0], k=3)
        assert len(result) >= 1
        assert result.distances[0] == pytest.approx(0.0, abs=1e-9)

    def test_constant_columns(self, factory):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((300, 8))
        data[:, 4:] = 7.0  # half the coordinates carry no information
        index = factory().fit(data)
        result = index.query(data[11], k=1)
        assert result.distances[0] == pytest.approx(0.0, abs=1e-9)

    def test_single_tight_cluster(self, factory):
        rng = np.random.default_rng(3)
        data = 5.0 + 0.01 * rng.standard_normal((300, 8))
        index = factory().fit(data)
        result = index.query(data[0], k=5)
        assert len(result) >= 1
        assert np.all(result.distances < 1.0)

    def test_extreme_scale(self, factory):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((300, 8)) * 1e6
        index = factory().fit(data)
        result = index.query(data[42], k=1)
        assert result.ids[0] == 42


class TestAllIdenticalPoints:
    """The fully degenerate case: every point equal."""

    @pytest.mark.parametrize("factory", ALL_INDEXES, ids=IDS)
    def test_identical_points(self, factory):
        data = np.ones((250, 6))
        index = factory().fit(data)
        result = index.query(np.ones(6), k=3)
        assert len(result) >= 1
        assert np.all(result.distances == 0.0)
