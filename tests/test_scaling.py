"""Tests for the base-radius (distance unit) estimator."""

import numpy as np
import pytest

from repro.core.scaling import estimate_base_radius, resolve_base_radius


class TestEstimateBaseRadius:
    def test_regular_grid_unit(self):
        """Points on an integer line have NN distance exactly 1."""
        data = np.arange(100, dtype=np.float64)[:, None]
        assert estimate_base_radius(data, rng=0) == pytest.approx(1.0)

    def test_scales_linearly_with_data(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal((500, 8))
        r1 = estimate_base_radius(base, rng=1)
        r2 = estimate_base_radius(base * 10, rng=1)
        assert r2 == pytest.approx(10 * r1, rel=1e-9)

    def test_duplicates_fall_back_to_positive_mean(self):
        data = np.zeros((50, 4))
        data[:10] = 1.0  # some positive distances exist
        r = estimate_base_radius(data, rng=0)
        assert r > 0

    def test_all_identical_points_fall_back_to_one(self):
        data = np.ones((30, 4))
        assert estimate_base_radius(data, rng=0) == 1.0

    def test_sample_size_respected(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((5000, 4))
        r = estimate_base_radius(data, rng=1, sample_size=100)
        assert r > 0

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            estimate_base_radius(np.zeros((1, 3)))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((300, 6))
        assert estimate_base_radius(data, rng=7) \
            == estimate_base_radius(data, rng=7)


class TestResolveBaseRadius:
    def test_auto_estimates(self):
        data = np.arange(50, dtype=np.float64)[:, None]
        assert resolve_base_radius("auto", data, rng=0) == pytest.approx(1.0)

    def test_number_passes_through(self):
        assert resolve_base_radius(3.5, None) == 3.5

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_base_radius(0.0, None)
        with pytest.raises(ValueError):
            resolve_base_radius(-1, None)
