"""Serving front-end: protocol, admission, coalescing exactness, overload.

The contract under test mirrors the serving layer's promises:

* the wire protocol round-trips losslessly (float64 survives JSON) and
  rejects malformed requests with ``bad_request`` instead of dropped
  connections;
* admission is bounded and deadline-aware — overflow sheds explicitly,
  a drain refuses new work while queued work completes, batch formation
  sweeps expired requests and caps any one client's share;
* **coalescing is exact**: however requests interleave across clients,
  every answer (ids, distances, degraded/budget_exhausted stats) is
  bit-identical to querying the index sequentially — pinned by a
  Hypothesis property over random interleavings;
* overload is survivable: at 2x capacity the server sheds rather than
  queues unboundedly, shed responses are well-formed, admitted queries
  are still answered exactly, and readiness/metrics reflect the
  pressure;
* a SIGKILLed shard worker mid-stream resolves per the index's
  failover policy without stalling other clients (``@pytest.mark.shard``).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import C2LSH, QueryBudget, QueryClient, QueryServer, ServerConfig
from repro.obs import MetricsRegistry, ObsServer
from repro.reliability.budget import BudgetTracker, as_budget_list, tripped_cap
from repro.serving import (
    AdmissionController,
    CoalesceTuner,
    PendingQuery,
    ProtocolError,
    decode_frames,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    shed_response,
)

DIM = 8


@pytest.fixture(scope="module")
def index(tiny):
    data, _ = tiny
    return C2LSH(seed=7).fit(data)


def _pending(client="c", k=1, deadline_s=None, admitted_at=0.0, req_id=0):
    return PendingQuery(vector=np.zeros(DIM), k=k, deadline_s=deadline_s,
                        budget=None, client=client, req_id=req_id,
                        admitted_at=admitted_at, respond=None)


# -- protocol ----------------------------------------------------------------


def test_frame_round_trip_and_partial_frames():
    objs = [{"a": 1}, {"b": [1.5, -2.25]}, {"c": "x"}]
    blob = b"".join(encode_frame(o) for o in objs)
    # Whole buffer decodes in order; a split mid-frame leaves a remainder.
    decoded, rest = decode_frames(blob)
    assert decoded == objs and rest == b""
    decoded, rest = decode_frames(blob[:len(blob) - 3])
    assert decoded == objs[:2]
    more, rest = decode_frames(rest + blob[len(blob) - 3:])
    assert more == [objs[2]] and rest == b""


def test_frame_rejects_oversize_and_bad_json():
    import struct

    huge = struct.pack("!I", 64 * 1024 * 1024) + b"x"
    with pytest.raises(ProtocolError, match="exceeds"):
        decode_frames(huge)
    bad = struct.pack("!I", 3) + b"{{{"
    with pytest.raises(ProtocolError, match="invalid JSON"):
        decode_frames(bad)


def test_float64_json_round_trip_is_exact():
    # The bit-identity of served results rests on this property.
    rng = np.random.default_rng(0)
    values = np.concatenate([rng.standard_normal(100) * 1e6,
                             rng.standard_normal(100) * 1e-6])
    round_tripped = np.asarray(json.loads(json.dumps(
        [float(v) for v in values])))
    np.testing.assert_array_equal(round_tripped, values)


@pytest.mark.parametrize("request_obj, match", [
    ([1, 2], "JSON object"),
    ({"id": 1.5}, "id must be"),
    ({"op": "wat"}, "unknown op"),
    ({"query": "nope"}, "non-empty array"),
    ({"query": [1.0] * (DIM + 1)}, "dimensions"),
    ({"query": [float("nan")] + [0.0] * (DIM - 1)}, "non-finite"),
    ({"query": [0.0] * DIM, "k": 0}, "positive integer"),
    ({"query": [0.0] * DIM, "k": True}, "positive integer"),
    ({"query": [0.0] * DIM, "k": 99}, "max_k"),
    ({"query": [0.0] * DIM, "deadline_s": -1}, "deadline_s"),
    ({"query": [0.0] * DIM, "deadline_s": "soon"}, "deadline_s"),
])
def test_parse_request_rejections(request_obj, match):
    with pytest.raises(ProtocolError, match=match):
        parse_request(request_obj, DIM, max_k=16)


def test_parse_request_accepts_query_and_ping():
    req_id, op, vec, k, deadline = parse_request(
        {"id": "r1", "query": [0.5] * DIM, "k": 3, "deadline_s": 0.25}, DIM)
    assert (req_id, op, k, deadline) == ("r1", "query", 3, 0.25)
    assert vec.dtype == np.float64 and vec.shape == (DIM,)
    assert parse_request({"op": "ping", "id": 9}, DIM)[:2] == (9, "ping")


def test_response_builders_shapes():
    assert shed_response(3, "overloaded") == {
        "id": 3, "status": "shed", "reason": "overloaded"}
    err = error_response(None, "bad_request", "nope")
    assert err["status"] == "error" and err["error"] == "bad_request"


# -- coalescing window tuner -------------------------------------------------


def test_tuner_zero_window_when_sparse():
    tuner = CoalesceTuner(target_batch=8, max_window_s=0.005)
    assert tuner.window() == 0.0            # no history
    tuner.on_arrival(0.0)
    tuner.on_arrival(1.0)                   # 1 s gaps: far sparser than max
    assert tuner.gap_ewma_s == 1.0
    assert tuner.window() == 0.0


def test_tuner_dense_traffic_targets_batch_worth_of_time():
    tuner = CoalesceTuner(target_batch=10, max_window_s=0.005, alpha=1.0)
    t = 0.0
    for _ in range(5):                      # 100 us gaps
        tuner.on_arrival(t)
        t += 1e-4
    assert tuner.gap_ewma_s == pytest.approx(1e-4)
    assert tuner.window() == pytest.approx(1e-3)   # 10 arrivals' worth
    # Even denser traffic clamps at max_window_s from below.
    tuner2 = CoalesceTuner(target_batch=1000, max_window_s=0.005, alpha=1.0)
    tuner2.on_arrival(0.0)
    tuner2.on_arrival(1e-4)
    assert tuner2.window() == 0.005


def test_tuner_validation():
    with pytest.raises(ValueError, match="target_batch"):
        CoalesceTuner(target_batch=0)
    with pytest.raises(ValueError, match="min_window_s"):
        CoalesceTuner(min_window_s=0.1, max_window_s=0.01)
    with pytest.raises(ValueError, match="alpha"):
        CoalesceTuner(alpha=0.0)


# -- admission controller ----------------------------------------------------


def test_admission_bounded_queue_sheds_overloaded():
    adm = AdmissionController(capacity=2)
    assert adm.offer(_pending()) == ""
    assert adm.offer(_pending()) == ""
    assert adm.offer(_pending()) == "overloaded"
    assert adm.depth == 2


def test_admission_drain_refuses_but_keeps_queue():
    adm = AdmissionController(capacity=4)
    adm.offer(_pending(req_id=1))
    adm.begin_drain()
    assert adm.offer(_pending(req_id=2)) == "draining"
    assert adm.depth == 1                   # queued work still completes
    batch, expired = adm.take_batch(8, now=0.0)
    assert [p.req_id for p in batch] == [1] and expired == []


def test_admission_deadline_shed_uses_service_estimate():
    adm = AdmissionController(capacity=100)
    adm.record_service(10, 1.0)             # 100 ms per query, observed
    for _ in range(4):
        adm.offer(_pending(deadline_s=10.0))
    # 5th request would wait ~0.5 s; a 0.2 s deadline is hopeless.
    assert adm.offer(_pending(deadline_s=0.2)) == "deadline"
    assert adm.offer(_pending(deadline_s=10.0)) == ""
    assert adm.offer(_pending(deadline_s=None)) == ""   # no deadline, no shed


def test_take_batch_sweeps_expired_and_pins_k():
    adm = AdmissionController(capacity=10)
    adm.offer(_pending(req_id="dead", deadline_s=0.5, admitted_at=0.0))
    adm.offer(_pending(req_id="a", k=5, admitted_at=1.0))
    adm.offer(_pending(req_id="b", k=3, admitted_at=1.0))
    adm.offer(_pending(req_id="c", k=5, admitted_at=1.0))
    batch, expired = adm.take_batch(8, now=2.0)
    assert [p.req_id for p in expired] == ["dead"]
    # Head pins k=5; the k=3 request waits for the next batch.
    assert [p.req_id for p in batch] == ["a", "c"]
    batch2, _ = adm.take_batch(8, now=2.0)
    assert [p.req_id for p in batch2] == ["b"]
    assert adm.depth == 0


def test_take_batch_fairness_caps_flooding_client():
    adm = AdmissionController(capacity=100)
    for i in range(20):
        adm.offer(_pending(client="flood", req_id=f"f{i}"))
    for i in range(3):
        adm.offer(_pending(client=f"small{i}", req_id=f"s{i}"))
    batch, _ = adm.take_batch(8, now=0.0)
    by_client = {}
    for p in batch:
        by_client[p.client] = by_client.get(p.client, 0) + 1
    # 4 clients, max_batch=8 -> each capped at ceil(8/4)=2 slots.
    assert by_client["flood"] == 2
    assert all(by_client[f"small{i}"] == 1 for i in range(3))
    # The flooding client's overflow waits; nobody else's does.
    assert adm.depth == 18


# -- budget anchoring (queue wait counts against the deadline) ---------------


def test_budget_started_at_anchors_deadline():
    anchor = time.perf_counter() - 10.0
    budget = QueryBudget(deadline_s=5.0).with_start(anchor)
    assert budget.started_at == anchor
    # The anchor overrides any caller-supplied start: 10 s of queue wait
    # already consumed the whole 5 s deadline.
    assert budget.remaining_s(time.perf_counter()) == 0.0
    # The tracker honors the anchor too: the very first check trips.
    tracker = BudgetTracker(budget)
    assert tracker.exceeded() == "deadline"
    # Without an anchor, the caller's start stamp rules as before.
    plain = QueryBudget(deadline_s=5.0)
    assert plain.remaining_s(time.perf_counter()) == pytest.approx(
        5.0, abs=0.1)


def test_tripped_cap_order_and_anchor():
    b = QueryBudget(deadline_s=100.0, max_candidates=10, max_io_pages=5)
    assert tripped_cap(b, 11, 6, True, None, time.perf_counter()) \
        == "candidates"                     # candidates outranks io_pages
    assert tripped_cap(b, 9, 5, True, None, time.perf_counter()) == "io_pages"
    assert tripped_cap(b, 9, 99, False, None, time.perf_counter()) == ""
    anchored = b.with_start(time.perf_counter() - 200.0)
    assert tripped_cap(anchored, 0, 0, False, None,
                       time.perf_counter()) == "deadline"


def test_as_budget_list_normalization():
    b = QueryBudget(max_candidates=3)
    assert as_budget_list(None, 4) is None
    assert as_budget_list([None, None], 2) is None
    assert as_budget_list(b, 3) == [b, b, b]
    assert as_budget_list([b, None], 2) == [b, None]
    with pytest.raises(ValueError, match="1 budgets for 3 queries"):
        as_budget_list([b], 3)
    with pytest.raises(TypeError, match="QueryBudget"):
        as_budget_list([b, "soon"], 2)


def test_query_batch_accepts_per_query_budgets(index, tiny):
    data, queries = tiny
    plain = index.query_batch(queries, k=3)
    tight = QueryBudget(max_candidates=1)
    budgets = [None] * len(queries)
    budgets[0] = tight                      # query 0 needs several rounds
    mixed = index.query_batch(queries, k=3, budget=budgets)
    # Query 0 degrades under its private cap; the others are untouched.
    assert mixed[0].stats.budget_exhausted == "candidates"
    assert mixed[0].stats.degraded
    for i in (1, 2, 3, 4):
        np.testing.assert_array_equal(mixed[i].ids, plain[i].ids)
        np.testing.assert_array_equal(mixed[i].distances, plain[i].distances)
        assert not mixed[i].stats.degraded
    # And the capped answer matches a solo run under the same cap.
    solo = index.query(queries[0], k=3, budget=tight)
    np.testing.assert_array_equal(mixed[0].ids, solo.ids)
    assert solo.stats.budget_exhausted == "candidates"


# -- end-to-end server -------------------------------------------------------


def _serve(index, **overrides):
    config = ServerConfig(**overrides)
    return QueryServer(index, config, metrics=MetricsRegistry())


def test_server_round_trip_is_bit_identical(index, tiny):
    data, queries = tiny
    with _serve(index) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            for q in queries:
                resp = client.query(q, k=4, deadline_s=30.0)
                direct = index.query(q, k=4)
                assert resp["status"] == "ok"
                assert resp["ids"] == [int(i) for i in direct.ids]
                np.testing.assert_array_equal(
                    np.asarray(resp["distances"]), direct.distances)
                assert resp["stats"]["terminated_by"] == \
                    direct.stats.terminated_by
                assert resp["stats"]["queue_wait_s"] >= 0.0
    snap = server.metrics.snapshot()
    assert snap["serving.completed"] == len(queries)
    assert snap.get("serving.shed", 0) == 0


def test_server_coalesces_pipelined_queries_exactly(index, tiny):
    """Many pipelined requests across clients coalesce into batches, and
    every answer still matches the sequential path bit for bit."""
    data, queries = tiny
    reps = np.tile(queries, (6, 1))         # 30 requests
    with _serve(index, max_window_s=0.02, target_batch=8) as server:
        clients = [QueryClient("127.0.0.1", server.port) for _ in range(3)]
        try:
            ids = []
            for i, q in enumerate(reps):
                ids.append(clients[i % 3].send(q, k=3, deadline_s=30.0))
            responses = [clients[i % 3].recv_for(req_id)
                         for i, req_id in enumerate(ids)]
        finally:
            for c in clients:
                c.close()
        for q, resp in zip(reps, responses):
            direct = index.query(q, k=3)
            assert resp["status"] == "ok"
            assert resp["ids"] == [int(i) for i in direct.ids]
            np.testing.assert_array_equal(
                np.asarray(resp["distances"]), direct.distances)
    snap = server.metrics.snapshot()
    assert snap["serving.completed"] == len(reps)
    # Coalescing actually happened: fewer batches than requests.
    assert snap["serving.batches"] < len(reps)


def test_server_budget_stats_match_direct_query(index, tiny):
    """Server-wide deterministic caps degrade exactly like a direct
    budgeted query — including the stats the client sees."""
    data, queries = tiny
    cap = QueryBudget(max_candidates=2)
    with _serve(index, budget=cap) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            for q in queries:
                resp = client.query(q, k=3)
                direct = index.query(q, k=3, budget=cap)
                assert resp["ids"] == [int(i) for i in direct.ids]
                assert resp["stats"]["degraded"] == direct.stats.degraded
                assert resp["stats"]["budget_exhausted"] == \
                    direct.stats.budget_exhausted


def test_server_sheds_draining_and_expired_deadline(index, tiny):
    data, queries = tiny
    with _serve(index) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            # A microscopic deadline expires while queued -> shed.
            resp = client.query(queries[0], k=2, deadline_s=1e-9)
            assert resp == {"id": 0, "status": "shed", "reason": "deadline"}
            # Draining refuses new admissions explicitly.
            server.admission.begin_drain()
            resp = client.query(queries[1], k=2, deadline_s=30.0)
            assert resp["status"] == "shed" and resp["reason"] == "draining"
    snap = server.metrics.snapshot()
    assert snap["serving.shed.deadline"] == 1
    assert snap["serving.shed.draining"] == 1


def test_server_drain_answers_inflight_work(index, tiny):
    """Graceful drain: admitted-but-unanswered queries are completed
    before the listener goes away."""
    data, queries = tiny
    slow = _SlowIndex(index, delay_s=0.1)
    server = _serve(slow, max_batch=2, max_window_s=0.0).start_in_thread()
    client = QueryClient("127.0.0.1", server.port)
    try:
        ids = [client.send(q, k=2, deadline_s=30.0) for q in queries]
        time.sleep(0.05)                    # all admitted, first batch busy
        server.stop_in_thread(drain=True)   # drain with a full queue
        responses = [client.recv_for(i) for i in ids]
        assert all(r["status"] == "ok" for r in responses)
    finally:
        client.close()


class _SlowIndex:
    """Delegating index whose batches take a fixed wall-clock time —
    deterministic pressure for the overload tests."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s
        self.dim = inner._data.shape[1]

    def query_batch(self, queries, k=1, budget=None):
        time.sleep(self._delay_s)
        return self._inner.query_batch(queries, k=k, budget=budget)


def test_server_sheds_overloaded_and_stays_exact(index, tiny):
    """At ~2x capacity the server sheds rather than queues unboundedly;
    every shed is explicit and every admitted answer is still exact."""
    data, queries = tiny
    slow = _SlowIndex(index, delay_s=0.05)
    with _serve(slow, queue_capacity=4, max_batch=2,
                max_window_s=0.0) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            n = 24
            ids = [client.send(queries[i % len(queries)], k=2)
                   for i in range(n)]
            responses = [client.recv_for(i) for i in ids]
        shed = [r for r in responses if r["status"] == "shed"]
        ok = [r for r in responses if r["status"] == "ok"]
        assert len(shed) + len(ok) == n
        assert shed, "2x-capacity load must shed"
        assert {r["reason"] for r in shed} <= {"overloaded", "deadline"}
        for i, resp in enumerate(responses):
            if resp["status"] != "ok":
                continue
            direct = index.query(queries[i % len(queries)], k=2)
            assert resp["ids"] == [int(j) for j in direct.ids]
    snap = server.metrics.snapshot()
    assert snap["serving.shed.overloaded"] == len(
        [r for r in shed if r["reason"] == "overloaded"])
    assert not server.readiness()["ready"]  # overload hysteresis


def test_readiness_flows_through_obs_healthz(index):
    from urllib.request import urlopen
    from urllib.error import HTTPError

    with _serve(index) as server:
        with ObsServer(metrics={"repro_serving": server.metrics},
                       readiness=server.readiness) as obs:
            with urlopen(obs.url + "/healthz", timeout=5) as resp:
                body = json.loads(resp.read())
                assert resp.status == 200
                assert body["ready"] is True and body["status"] == "ok"
            server.admission.begin_drain()
            server._draining = True
            try:
                with urlopen(obs.url + "/healthz", timeout=5) as resp:
                    raise AssertionError("draining must probe 503")
            except HTTPError as exc:
                body = json.loads(exc.read())
                # Liveness stays ok; readiness flips; detail says why.
                assert exc.code == 503
                assert body["status"] == "ok" and body["ready"] is False
                assert body["readiness"]["draining"] is True


def test_protocol_errors_answered_not_dropped(index):
    with _serve(index) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            client.send_raw({"op": "query", "id": 7, "query": [1, 2]})
            resp = client.recv()
            assert resp["status"] == "error"
            assert resp["error"] == "bad_request" and resp["id"] == 7
            # The connection survives a well-framed bad request.
            assert client.ping()["status"] == "ok"
        # Unframeable garbage gets one answer, then a hangup.
        raw = socket.create_connection(("127.0.0.1", server.port))
        try:
            raw.sendall((64 * 1024 * 1024).to_bytes(4, "big"))
            chunks = b""
            while True:
                chunk = raw.recv(65536)
                if not chunk:
                    break
                chunks += chunk
        finally:
            raw.close()
        objs, _ = decode_frames(chunks)
        assert objs and objs[0]["error"] == "bad_request"


# -- property: interleaving never changes an answer --------------------------


@settings(max_examples=15, deadline=None)
@given(
    plan=st.lists(
        st.tuples(st.integers(0, 2),        # which client
                  st.integers(0, 4),        # which query
                  st.integers(1, 5)),       # k
        min_size=1, max_size=12),
    seed=st.integers(0, 3),
)
def test_property_coalesced_answers_match_sequential(plan, seed):
    """Whatever the clients, ordering, ks, and per-query caps, a served
    answer is bit-identical to the sequential path — ids, distances,
    and degradation stats alike."""
    rng = np.random.default_rng(3)
    data = rng.standard_normal((200, DIM))
    queries = rng.standard_normal((5, DIM))
    index = C2LSH(seed=7).fit(data)
    # A deterministic server-wide cap on some runs exercises the
    # degraded/budget_exhausted parity, not just the happy path.
    cap = QueryBudget(max_candidates=3) if seed % 2 else None
    with _serve(index, budget=cap, max_window_s=0.002) as server:
        clients = [QueryClient("127.0.0.1", server.port) for _ in range(3)]
        try:
            sent = [(ci, qi, k, clients[ci].send(queries[qi], k=k))
                    for ci, qi, k in plan]
            got = [(qi, k, clients[ci].recv_for(req_id))
                   for ci, qi, k, req_id in sent]
        finally:
            for c in clients:
                c.close()
    for qi, k, resp in got:
        direct = index.query(queries[qi], k=k, budget=cap)
        assert resp["status"] == "ok"
        assert resp["ids"] == [int(i) for i in direct.ids]
        np.testing.assert_array_equal(
            np.asarray(resp["distances"]), direct.distances)
        assert resp["stats"]["degraded"] == direct.stats.degraded
        assert resp["stats"]["budget_exhausted"] == \
            direct.stats.budget_exhausted


# -- chaos: worker death under serving load ----------------------------------


@pytest.mark.shard
def test_sigkill_mid_serving_honors_failover_policy(tiny):
    """A SIGKILLed shard worker while the server is answering load:
    the failover policy resolves it (degrade -> flagged answers from
    survivors, then heal), no client stalls, the server keeps serving."""
    from repro import ShardedC2LSH
    from repro.sharding import FailoverPolicy

    data, queries = tiny
    policy = FailoverPolicy(on_failure="degrade", round_timeout_s=10.0)
    with ShardedC2LSH(n_shards=4, n_workers=2, seed=7,
                      failover=policy).fit(data) as eng:
        with _serve(eng, max_window_s=0.002) as server:
            with QueryClient("127.0.0.1", server.port) as c1, \
                    QueryClient("127.0.0.1", server.port) as c2:
                # Healthy baseline.
                baseline = c1.query(queries[0], k=3, deadline_s=30.0)
                assert baseline["status"] == "ok"
                # Kill a worker, then hit the server from two clients.
                victim = eng.worker_pids()[0]
                os.kill(victim, signal.SIGKILL)
                ids1 = [c1.send(q, k=3, deadline_s=30.0) for q in queries]
                ids2 = [c2.send(q, k=3, deadline_s=30.0) for q in queries]
                r1 = [c1.recv_for(i) for i in ids1]
                r2 = [c2.recv_for(i) for i in ids2]
        for resp in r1 + r2:
            # Every client gets an answer — degraded at worst, never a
            # stall, never a torn connection.
            assert resp["status"] == "ok"
            assert isinstance(resp["ids"], list)
            if resp["stats"]["degraded"]:
                assert resp["stats"]["failed_shards"]
        snap = server.metrics.snapshot()
        assert snap["serving.completed"] == 2 * len(queries) + 1
        assert snap.get("serving.errors", 0) == 0


# -- hot-query result cache --------------------------------------------------


def test_cache_hit_skips_engine_and_matches(index, tiny):
    data, queries = tiny
    q = queries[0]
    with _serve(index, cache_size=8) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            first = client.query(q, k=3, deadline_s=30.0)
            second = client.query(q, k=3, deadline_s=30.0)
    assert first["ids"] == second["ids"]
    assert first["distances"] == second["distances"]
    snap = server.metrics.snapshot()
    assert snap["serving.cache.miss"] == 1
    assert snap["serving.cache.hit"] == 1
    # The hit never reached the engine: only one batch was dispatched,
    # but both requests completed.
    assert snap["serving.batches"] == 1
    assert snap["serving.completed"] == 2


def test_cache_disabled_by_default(index, tiny):
    data, queries = tiny
    with _serve(index) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            client.query(queries[0], k=3, deadline_s=30.0)
            client.query(queries[0], k=3, deadline_s=30.0)
    snap = server.metrics.snapshot()
    assert "serving.cache.hit" not in snap
    assert "serving.cache.miss" not in snap
    assert snap["serving.batches"] == 2


def test_cache_keys_on_k_and_evicts_lru(index, tiny):
    data, queries = tiny
    q = queries[0]
    with _serve(index, cache_size=1) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            client.query(q, k=3, deadline_s=30.0)       # miss, cached
            client.query(q, k=4, deadline_s=30.0)       # miss: other k
            client.query(q, k=3, deadline_s=30.0)       # evicted: miss
    snap = server.metrics.snapshot()
    assert snap["serving.cache.miss"] == 3
    assert snap.get("serving.cache.hit", 0) == 0


def test_cache_invalidated_on_index_swap(tiny):
    data, queries = tiny
    q = queries[0]
    first = C2LSH(seed=7).fit(data)
    second = C2LSH(seed=7).fit(data)
    with _serve(first, cache_size=8) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            client.query(q, k=3, deadline_s=30.0)
            client.query(q, k=3, deadline_s=30.0)       # hit
            server.index = second                       # hot swap
            resp = client.query(q, k=3, deadline_s=30.0)
    assert resp["status"] == "ok"
    snap = server.metrics.snapshot()
    assert snap["serving.cache.hit"] == 1
    assert snap["serving.cache.miss"] == 2              # post-swap miss
    assert snap["serving.cache.invalidated"] == 1


def test_degraded_results_are_never_cached(index, tiny):
    data, queries = tiny
    # Under this cap queries[0] degrades (see the batch-budget test
    # above), so nothing may enter the cache — the budget, not the
    # query, shaped that answer.
    cap = QueryBudget(max_candidates=1)
    with _serve(index, cache_size=8, budget=cap) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            r1 = client.query(queries[0], k=3, deadline_s=30.0)
            r2 = client.query(queries[0], k=3, deadline_s=30.0)
    assert r1["stats"]["degraded"] and r2["stats"]["degraded"]
    snap = server.metrics.snapshot()
    assert snap["serving.cache.miss"] == 2
    assert snap.get("serving.cache.hit", 0) == 0


def test_server_adaptive_probe_matches_direct_query(tiny):
    data, queries = tiny
    served = C2LSH(seed=7).fit(data)
    direct = C2LSH(seed=7).fit(data)
    with _serve(served, probe="adaptive") as server:
        with QueryClient("127.0.0.1", server.port) as client:
            for q in queries:
                resp = client.query(q, k=4, deadline_s=30.0)
                want = direct.query(q, k=4, probe="adaptive")
                assert resp["status"] == "ok"
                assert resp["ids"] == [int(i) for i in want.ids]
                np.testing.assert_array_equal(
                    np.asarray(resp["distances"]), want.distances)
