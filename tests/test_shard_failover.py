"""Self-healing sharded engine: worker death at every protocol step.

The contract under test: killing a worker — injected ``os._exit`` via
``worker_exit.*`` fault rules, or a real ``SIGKILL`` — at *any* step of
the lockstep protocol is survivable. ``"rebuild"`` answers stay
bit-identical to the unsharded index (the respawned worker replays the
session); ``"degrade"`` answers come from surviving shards only, flagged
``QueryStats.degraded`` with ``failed_shards`` naming the losses;
``"raise"`` fails fast with :class:`WorkerFailureError`. Failovers must
also be observable (``shard.failover.*`` counters, ``worker_failure``
flight dumps) and leak-free (worker pools and the shared-memory segment
are released even when the build itself dies).

``REPRO_CHAOS_SEED`` (the CI worker-kill matrix varies it) picks which
worker dies in the multi-worker tests — changing which shards are lost,
what replays, and what a degraded answer may cite — while every kill
schedule stays deterministic for a fixed seed. Serial-runner tests cover
the failover logic without process overhead; ``@pytest.mark.shard``
tests drive real pools, real process death, and real respawns.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro import C2LSH, ShardedC2LSH
from repro.obs import FlightRecorder, flight
from repro.reliability import (
    FaultPlan,
    FaultRule,
    InjectedWorkerExit,
    QueryBudget,
    WorkerFailureError,
)
from repro.sharding import CircuitBreaker, FailoverPolicy
from repro.sharding.supervisor import protocol_timeout

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Every chaos-injectable protocol step (the ``worker_exit.*`` family).
STEPS = ("batch_start", "batch_round", "fallback_candidates",
         "fallback_verify", "batch_end")

#: No background threads: tests control respawn timing explicitly.
NO_RESPAWN = dict(auto_respawn=False)


def _kill_once(step, worker=None):
    """Kill-once on the first call at ``step``: most protocol steps run
    once per query block, so deterministic first-call placement is the
    only schedule that reaches every site."""
    return FaultPlan((FaultRule(site=f"worker_exit.{step}", kind="exit",
                                worker=worker, max_triggers=1),))


def _assert_identical(expected, got):
    assert len(expected) == len(got)
    for r, g in zip(expected, got):
        np.testing.assert_array_equal(r.ids, g.ids)
        np.testing.assert_array_equal(r.distances, g.distances)
        # Budget trips may degrade both runs alike; failover must not.
        assert g.stats.degraded == r.stats.degraded
        assert g.stats.budget_exhausted == r.stats.budget_exhausted
        assert g.stats.failed_shards == ()


def _true_distances(data, query, ids):
    return np.sqrt(((data[ids] - query) ** 2).sum(axis=1))


# -- policy & breaker units --------------------------------------------------


def test_failover_policy_validation():
    with pytest.raises(ValueError, match="failure policy"):
        FailoverPolicy(on_failure="retry")
    with pytest.raises(ValueError, match="round_timeout_s"):
        FailoverPolicy(round_timeout_s=0)
    with pytest.raises(ValueError, match="max_failures"):
        FailoverPolicy(max_failures=0)
    with pytest.raises(ValueError, match="failure_window_s"):
        FailoverPolicy(failure_window_s=-1)
    # round_timeout_s=None disables protocol deadlines entirely.
    assert FailoverPolicy(round_timeout_s=None).round_timeout_s is None


def test_circuit_breaker_sliding_window():
    breaker = CircuitBreaker(max_failures=2, window_s=10.0)
    assert not breaker.record(0, now=0.0)
    assert not breaker.tripped(0, now=0.0)
    assert breaker.record(0, now=1.0)
    assert breaker.tripped(0, now=1.0)
    # Old failures age out of the window...
    assert not breaker.tripped(0, now=20.0)
    # ...and reset() forgets a worker entirely.
    breaker.record(1, now=0.0)
    breaker.record(1, now=0.5)
    breaker.reset(1)
    assert not breaker.tripped(1, now=0.5)
    assert breaker.snapshot() == {0: 1} or breaker.snapshot() == {}


def test_protocol_timeout_adds_budget_remaining():
    policy = FailoverPolicy(round_timeout_s=2.0)
    assert protocol_timeout(policy) == 2.0
    # Remaining budget is *added*: a slow-but-alive worker near the
    # deadline is the budget check's problem, not a presumed death.
    started = time.perf_counter()
    t = protocol_timeout(policy, QueryBudget(deadline_s=100.0), started)
    assert 2.0 < t <= 102.0
    assert protocol_timeout(FailoverPolicy(round_timeout_s=None)) is None


def test_exit_rules_round_trip_and_validate():
    plan = _kill_once("batch_round", worker=1)
    restored = FaultPlan.from_dict(plan.to_dict())
    assert restored.rules[0].kind == "exit"
    assert restored.rules[0].worker == 1
    with pytest.raises(ValueError, match="worker"):
        FaultRule(site="worker_exit.build", kind="exit", worker=-1)


def test_worker_failure_error_carries_causes():
    err = WorkerFailureError("batch_round", {1: "timeout", 0: "dead"})
    assert err.method == "batch_round"
    assert err.failures == {0: "dead", 1: "timeout"}
    assert "batch_round" in str(err) and "timeout" in str(err)


# -- rebuild: bit-identical through death at every step ----------------------


@pytest.mark.parametrize("step", STEPS)
def test_rebuild_is_bit_identical_at_every_step(tiny, step):
    """Kill the worker at each protocol step; replay keeps exactness."""
    data, queries = tiny
    expected = C2LSH(seed=11).fit(data).query_batch(
        queries, k=4, budget=QueryBudget(max_candidates=2))
    # max_candidates=1-ish budgets force the fallback path, so the
    # fallback_* sites actually execute (and die, and recover).
    with ShardedC2LSH(n_shards=3, n_workers=0, seed=11,
                      fault_plan=_kill_once(step),
                      failover=FailoverPolicy(**NO_RESPAWN)).fit(data) \
            as eng:
        got = eng.query_batch(queries, k=4,
                              budget=QueryBudget(max_candidates=2))
        _assert_identical(expected, got)
        snap = eng.metrics.snapshot()
    assert snap.get("shard.failover.failures", 0) >= 1
    assert snap.get("shard.failover.respawns", 0) >= 1


def test_rebuild_unbudgeted_matches_unsharded(clustered):
    data, queries = clustered
    expected = C2LSH(seed=5).fit(data).query_batch(queries, k=10)
    with ShardedC2LSH(n_shards=4, n_workers=0, seed=5,
                      fault_plan=_kill_once("batch_round"),
                      failover=FailoverPolicy(**NO_RESPAWN)).fit(data) \
            as eng:
        _assert_identical(expected, eng.query_batch(queries, k=10))
        assert eng.metrics.snapshot().get("shard.failover.rebuilds") >= 1


def test_rebuild_writes_postmortem_and_notes(tiny, tmp_path):
    import json

    data, queries = tiny
    mine = FlightRecorder(capacity=128, directory=str(tmp_path),
                          min_dump_interval_s=0.0)
    old = flight.install(mine)
    try:
        with ShardedC2LSH(n_shards=2, n_workers=0, seed=3,
                          fault_plan=_kill_once("batch_round"),
                          failover=FailoverPolicy(**NO_RESPAWN)).fit(data) \
                as eng:
            eng.query_batch(queries, k=3)
    finally:
        flight.install(old)
    dumps = sorted(tmp_path.glob("flight_worker_failure_*.json"))
    assert dumps
    payload = json.loads(dumps[0].read_text())
    assert payload["extra"]["policy"] == "rebuild"
    assert payload["extra"]["failures"] == {"0": "worker_exit"}
    kinds = {e["kind"] for e in payload["events"]}
    assert "worker_failure" in kinds
    # The respawn/rebuild notes land after the dump; check the recorder.
    kinds = {e["kind"] for e in mine.events()}
    assert {"worker_respawned", "worker_rebuilt"} <= kinds


def test_rebuild_survives_kill_during_build(tiny):
    """A worker that dies mid-build is respawned before fit returns."""
    data, queries = tiny
    expected = C2LSH(seed=9).fit(data).query_batch(queries, k=3)
    plan = FaultPlan((FaultRule(site="worker_exit.build", kind="exit",
                                max_triggers=1),))
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=9,
                      fault_plan=plan).fit(data) as eng:
        assert eng.is_fitted
        assert set(eng.build_info["shards"]) == {0, 1}
        _assert_identical(expected, eng.query_batch(queries, k=3))


# -- degrade: partial answers, honest stats ----------------------------------


def test_degrade_serial_total_loss_is_flagged(tiny):
    """Serial mode has one host: its death degrades in-flight queries."""
    data, queries = tiny
    with ShardedC2LSH(n_shards=4, n_workers=0, seed=3,
                      fault_plan=_kill_once("batch_round"),
                      failover=FailoverPolicy(on_failure="degrade",
                                              **NO_RESPAWN)).fit(data) \
            as eng:
        results = eng.query_batch(queries, k=3)
        snap = eng.metrics.snapshot()
    degraded = [r for r in results if r.stats.degraded]
    assert degraded, "the in-flight query must be degraded"
    for r in degraded:
        assert r.stats.failed_shards == (0, 1, 2, 3)
        assert r.stats.terminated_by == "failover"
        assert not r.stats.budget_exhausted
    assert snap["shard.failover.degraded_queries"] == len(degraded)
    # Whatever was collected before the death carries true distances.
    for r, q in zip(results, queries):
        np.testing.assert_allclose(
            r.distances, _true_distances(data, q, r.ids))


def test_degrade_is_deterministic(tiny):
    data, queries = tiny

    def run():
        with ShardedC2LSH(n_shards=4, n_workers=0, seed=3,
                          fault_plan=_kill_once("batch_round"),
                          failover=FailoverPolicy(on_failure="degrade",
                                                  **NO_RESPAWN)
                          ).fit(data) as eng:
            return eng.query_batch(queries, k=3)

    first, second = run(), run()
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.distances, b.distances)
        assert a.stats.degraded == b.stats.degraded
        assert a.stats.failed_shards == b.stats.failed_shards


# -- raise: fail-fast preserved ----------------------------------------------


@pytest.mark.parametrize("step",
                         ("batch_start", "batch_round",
                          "fallback_candidates", "fallback_verify"))
def test_raise_policy_fails_fast(tiny, step):
    data, queries = tiny
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=3,
                      fault_plan=_kill_once(step),
                      on_worker_failure="raise").fit(data) as eng:
        with pytest.raises(WorkerFailureError) as excinfo:
            eng.query_batch(queries, k=4,
                            budget=QueryBudget(max_candidates=2))
        assert excinfo.value.method == step
        assert excinfo.value.failures == {0: "worker_exit"}


def test_injected_exit_escapes_retry_guard():
    """InjectedWorkerExit is death, not a transient I/O fault — the
    bounded-retry machinery must not swallow it."""
    from repro.reliability import FaultInjector, RetryPolicy

    injector = FaultInjector(
        FaultPlan((FaultRule(site="worker_exit.build", kind="exit"),)),
        seed=0, retry=RetryPolicy(max_retries=5, backoff_s=0.0))
    with pytest.raises(InjectedWorkerExit):
        injector.guard("worker_exit.build")


# -- failed build: no half-fitted engine -------------------------------------


def test_failed_build_resets_state_for_retry(tiny):
    data, _ = tiny
    plan = FaultPlan((FaultRule(site="worker_exit.build", kind="exit",
                                max_triggers=1),))
    eng = ShardedC2LSH(n_shards=2, n_workers=0, seed=3, fault_plan=plan,
                       on_worker_failure="raise")
    with pytest.raises(WorkerFailureError):
        eng.fit(data)
    assert not eng.is_fitted
    assert eng._runner is None and eng._shm is None
    assert eng.params is None and eng.build_info is None
    # fit() is retryable on the same object once the cause is gone.
    eng._fault_plan = None
    eng.fit(data)
    assert eng.is_fitted
    expected = C2LSH(seed=3).fit(data).query(data[0], k=3)
    got = eng.query(data[0], k=3)
    np.testing.assert_array_equal(expected.ids, got.ids)
    eng.close()


# -- circuit breaker: give up on a worker that keeps dying -------------------


def test_breaker_quarantines_repeat_offender(tiny):
    """An unlimited kill rule defeats replay; the breaker must bound the
    rebuild-crash loop and fall back to degraded service."""
    data, queries = tiny
    plan = FaultPlan((FaultRule(site="worker_exit.batch_round",
                                kind="exit"),))  # unlimited triggers
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=3, fault_plan=plan,
                      failover=FailoverPolicy(max_failures=2,
                                              **NO_RESPAWN)).fit(data) \
            as eng:
        results = eng.query_batch(queries, k=3)
        snap = eng.metrics.snapshot()
        assert eng._supervisor.breaker.tripped(0)
        assert eng._supervisor.dead_workers() == [0]
    assert snap["shard.failover.failures"] >= 2
    # Bounded: once tripped, no further respawn attempts are made.
    assert snap.get("shard.failover.respawns", 0) <= 2
    assert any(r.stats.degraded for r in results)


# -- process pools: real death, real respawn ---------------------------------


@pytest.mark.shard
@pytest.mark.parametrize("step", STEPS)
def test_process_kill_rebuild_bit_identical(tiny, step):
    """os._exit in a real pool worker at every step; replay recovers."""
    data, queries = tiny
    expected = C2LSH(seed=11).fit(data).query_batch(
        queries, k=4, budget=QueryBudget(max_candidates=2))
    with ShardedC2LSH(n_shards=4, n_workers=2, seed=11,
                      fault_plan=_kill_once(step, worker=CHAOS_SEED % 2),
                      failover=FailoverPolicy(**NO_RESPAWN)).fit(data) \
            as eng:
        got = eng.query_batch(queries, k=4,
                              budget=QueryBudget(max_candidates=2))
        _assert_identical(expected, got)
        assert eng.metrics.snapshot().get(
            "shard.failover.failures", 0) >= 1


@pytest.mark.shard
def test_process_degrade_restricts_to_surviving_rows(tiny):
    """Degraded answers draw only from live shards, with true distances
    and ``failed_shards`` naming exactly the dead worker's shards."""
    data, queries = tiny
    plan = _kill_once("batch_round", worker=0)
    with ShardedC2LSH(n_shards=4, n_workers=2, seed=11, fault_plan=plan,
                      failover=FailoverPolicy(on_failure="degrade",
                                              **NO_RESPAWN)).fit(data) \
            as eng:
        results = eng.query_batch(queries, k=4)
        bounds = eng.shard_boundaries
        lost = tuple(eng._supervisor.shards_of(0))
    degraded = [r for r in results if r.stats.degraded]
    assert degraded
    for r, q in zip(results, queries):
        if not r.stats.degraded:
            continue
        assert r.stats.failed_shards == lost
        for s in r.stats.failed_shards:
            lo, hi = bounds[s], bounds[s + 1]
            assert not np.any((r.ids >= lo) & (r.ids < hi)), \
                "answer cites a row from a dead shard"
        np.testing.assert_allclose(
            r.distances, _true_distances(data, q, r.ids))


@pytest.mark.shard
def test_process_sigkill_mid_stream_rebuild(tiny):
    """A real SIGKILL between queries; the next call heals and stays
    bit-identical (the acceptance scenario)."""
    data, queries = tiny
    expected = C2LSH(seed=7).fit(data).query_batch(queries, k=5)
    with ShardedC2LSH(n_shards=4, n_workers=2, seed=7).fit(data) as eng:
        _assert_identical(expected, eng.query_batch(queries, k=5))
        victim = eng.worker_pids()[0]
        assert victim != os.getpid()
        os.kill(victim, signal.SIGKILL)
        time.sleep(0.2)
        _assert_identical(expected, eng.query_batch(queries, k=5))
        snap = eng.metrics.snapshot()
        assert snap.get("shard.failover.respawns", 0) >= 1
        report = eng.healthcheck()
        assert all(info["ok"] for info in report.values())
        assert eng.worker_pids()[0] != victim


@pytest.mark.shard
def test_process_stuck_worker_times_out_and_degrades(tiny):
    """A wedged (not dead) worker misses the protocol deadline and is
    treated exactly like a crash."""
    data, queries = tiny
    stall = FaultPlan((FaultRule(site="worker_exit.batch_round",
                                 kind="latency", latency_s=20.0,
                                 worker=0, max_triggers=1),))
    policy = FailoverPolicy(on_failure="degrade", round_timeout_s=1.0,
                            **NO_RESPAWN)
    with ShardedC2LSH(n_shards=4, n_workers=2, seed=11, fault_plan=stall,
                      failover=policy).fit(data) as eng:
        started = time.perf_counter()
        results = eng.query_batch(queries, k=3)
        elapsed = time.perf_counter() - started
        snap = eng.metrics.snapshot()
    assert elapsed < 15.0, "coordinator must not wait out the stall"
    assert snap.get("shard.failover.timeout", 0) >= 1
    assert any(r.stats.degraded for r in results)


@pytest.mark.shard
def test_process_background_respawn_rejoins_fanout(tiny):
    """degrade + auto_respawn: a later block gets the healed worker back
    and answers go bit-identical again."""
    data, queries = tiny
    expected = C2LSH(seed=7).fit(data).query_batch(queries, k=5)
    plan = _kill_once("batch_round", worker=0)
    with ShardedC2LSH(n_shards=4, n_workers=2, seed=7, fault_plan=plan,
                      on_worker_failure="degrade").fit(data) as eng:
        first = eng.query_batch(queries, k=5)
        assert any(r.stats.degraded for r in first)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if not eng._supervisor.dead_workers():
                break
            # adopt_ready only runs at block boundaries; poke it.
            eng.query_batch(queries[:1], k=5)
            time.sleep(0.1)
        assert not eng._supervisor.dead_workers(), "respawn never landed"
        _assert_identical(expected, eng.query_batch(queries, k=5))


@pytest.mark.shard
def test_no_shm_leak_after_failover_or_failed_build(tiny):
    """The shared-memory segment dies with the engine in every path."""
    from multiprocessing import shared_memory

    data, queries = tiny

    def _gone(name):
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return True
        seg.close()
        return False

    # Failover path: kill + rebuild, then close.
    eng = ShardedC2LSH(n_shards=4, n_workers=2, seed=7,
                       fault_plan=_kill_once("batch_round", worker=0),
                       failover=FailoverPolicy(**NO_RESPAWN)).fit(data)
    name = eng._shm.name
    eng.query_batch(queries, k=3)
    eng.close()
    assert _gone(name)

    # Failed-build path: the segment is released before fit() raises.
    plan = FaultPlan((FaultRule(site="worker_exit.build", kind="exit",
                                max_triggers=1),))
    eng = ShardedC2LSH(n_shards=2, n_workers=2, seed=7, fault_plan=plan,
                       on_worker_failure="raise")
    with pytest.raises(WorkerFailureError):
        eng.fit(data)
    assert eng._shm is None and not eng.is_fitted


@pytest.mark.shard
def test_healthcheck_repair_recovers_sigkilled_worker(tiny):
    data, queries = tiny
    with ShardedC2LSH(n_shards=4, n_workers=2, seed=7).fit(data) as eng:
        os.kill(eng.worker_pids()[1], signal.SIGKILL)
        time.sleep(0.2)
        report = eng.healthcheck(repair=True)
        assert not report[1]["ok"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            eng.query_batch(queries[:1], k=3)  # block boundary adopts
            if all(i["ok"] for i in eng.healthcheck().values()):
                break
            time.sleep(0.1)
        assert all(i["ok"] for i in eng.healthcheck().values())
