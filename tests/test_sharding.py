"""Sharded engine: exactness, determinism, budgets, persistence, planning.

The headline guarantee under test is *bit-identical results*: a
``ShardedC2LSH`` over any shard count answers exactly like an unsharded
``C2LSH`` built on the same data and seed — same ids, same distances,
same termination reasons — ties included. Most tests run the serial
executor (``n_workers=0``), which shares every line of protocol code with
the process path; the process-pool integration tests carry the ``shard``
marker so the main CI job can deselect them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import C2LSH, PageManager, ShardedC2LSH
from repro.obs import MetricsRegistry
from repro.reliability import CorruptIndexError, QueryBudget
from repro.sharding import (
    assign_shards,
    default_parallelism,
    load_sharded,
    shard_offsets,
)

pytestmark = []


def _assert_same_results(expected, got):
    assert len(expected) == len(got)
    for r, g in zip(expected, got):
        np.testing.assert_array_equal(r.ids, g.ids)
        np.testing.assert_array_equal(r.distances, g.distances)
        assert r.stats.terminated_by == g.stats.terminated_by
        assert r.stats.candidates == g.stats.candidates
        assert r.stats.scanned_entries == g.stats.scanned_entries
        assert r.stats.rounds == g.stats.rounds
        assert r.stats.final_radius == g.stats.final_radius


# -- planning helpers --------------------------------------------------------


def test_default_parallelism_respects_limit():
    width = default_parallelism()
    assert width >= 1
    assert default_parallelism(limit=1) == 1
    assert default_parallelism(limit=10_000) == width
    assert default_parallelism(limit=max(1, width - 1)) == max(1, width - 1)


def test_default_parallelism_rejects_bad_limit():
    with pytest.raises(ValueError, match="limit"):
        default_parallelism(limit=0)


def test_shard_offsets_partition_everything():
    for n, s in [(10, 1), (10, 3), (7, 7), (20_001, 8)]:
        off = shard_offsets(n, s)
        assert off[0] == 0 and off[-1] == n and len(off) == s + 1
        sizes = np.diff(off)
        assert sizes.min() >= 1
        assert sizes.max() - sizes.min() <= 1


def test_shard_offsets_rejects_impossible_splits():
    with pytest.raises(ValueError, match="non-empty"):
        shard_offsets(2, 3)
    with pytest.raises(ValueError, match="n_shards"):
        shard_offsets(10, 0)


def test_assign_shards_round_robin():
    assert assign_shards(5, 2) == ((0, 2, 4), (1, 3))
    assert assign_shards(4, 4) == ((0,), (1,), (2,), (3,))
    # More workers than shards collapses to one shard each.
    assert assign_shards(2, 8) == ((0,), (1,))


# -- exactness (serial executor) --------------------------------------------


@pytest.mark.parametrize("n_shards", [1, 2, 3])
def test_sharded_matches_unsharded(clustered, n_shards):
    data, queries = clustered
    base = C2LSH(seed=42).fit(data)
    expected = base.query_batch(queries, k=10)
    with ShardedC2LSH(n_shards=n_shards, n_workers=0, seed=42).fit(
            data) as eng:
        _assert_same_results(expected, eng.query_batch(queries, k=10))
        # Single-query path goes through the same protocol.
        single = eng.query(queries[0], k=10)
        np.testing.assert_array_equal(single.ids, expected[0].ids)


@given(seed=st.integers(min_value=0, max_value=2**31),
       n_shards=st.sampled_from([1, 2, 3]),
       k=st.sampled_from([1, 3, 7]))
@settings(max_examples=8, deadline=None)
def test_property_exact_ids_and_distances(seed, n_shards, k):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((230, 6))
    # Duplicate a block of rows so tied distances actually occur and the
    # tie-breaking order is exercised, not just distance equality.
    data[60:90] = data[0:30]
    queries = rng.standard_normal((4, 6))
    expected = C2LSH(seed=seed).fit(data).query_batch(queries, k=k)
    with ShardedC2LSH(n_shards=n_shards, n_workers=0,
                      seed=seed).fit(data) as eng:
        got = eng.query_batch(queries, k=k)
    for r, g in zip(expected, got):
        np.testing.assert_array_equal(r.ids, g.ids)
        np.testing.assert_array_equal(r.distances, g.distances)


def test_exact_on_duplicate_heavy_ties(tiny):
    data, queries = tiny
    # Every point duplicated: all top-k distances are ties.
    doubled = np.vstack([data, data])
    expected = C2LSH(seed=5).fit(doubled).query_batch(queries, k=6)
    with ShardedC2LSH(n_shards=3, n_workers=0, seed=5).fit(
            doubled) as eng:
        _assert_same_results(expected, eng.query_batch(queries, k=6))


def test_results_independent_of_execution_order(tiny):
    """Shard execution order must not leak into answers or stats."""
    data, queries = tiny
    with ShardedC2LSH(n_shards=3, n_workers=0, seed=9).fit(data) as eng:
        forward = eng.query_batch(queries, k=5)
        # Reverse the serial runner's execution order: shard 2 now runs
        # each round (and each fallback step) before shards 1 and 0.
        eng._runner.order = list(reversed(range(len(
            eng._runner._hosts))))
        reversed_order = eng.query_batch(queries, k=5)
    _assert_same_results(forward, reversed_order)


# -- stats, budgets, telemetry ----------------------------------------------


def test_stats_aggregate_across_shards(tiny):
    data, queries = tiny
    pm = PageManager()
    base = C2LSH(seed=11, page_manager=pm).fit(data)
    expected = base.query_batch(queries, k=4)
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=11,
                      page_accounting=True).fit(data) as eng:
        before = {sid: io for sid, io in eng.io_totals().items()}
        got = eng.query_batch(queries, k=4)
        after = eng.io_totals()
    _assert_same_results(expected, got)
    # Per-query io_reads must sum exactly to the pages the shards charged.
    charged = sum(after[s][0] - before[s][0] for s in after)
    assert sum(g.stats.io_reads for g in got) == charged
    assert all(g.stats.io_reads > 0 for g in got)


def test_budget_candidates_parity(clustered):
    data, queries = clustered
    budget = QueryBudget(max_candidates=5)
    expected = C2LSH(seed=21).fit(data).query_batch(queries, k=10,
                                                    budget=budget)
    with ShardedC2LSH(n_shards=3, n_workers=0, seed=21).fit(data) as eng:
        got = eng.query_batch(queries, k=10, budget=budget)
    _assert_same_results(expected, got)
    for r, g in zip(expected, got):
        assert r.stats.degraded == g.stats.degraded
        assert r.stats.budget_exhausted == g.stats.budget_exhausted


def test_budget_io_pages_trips_on_aggregate(tiny):
    data, queries = tiny
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=3,
                      page_accounting=True).fit(data) as eng:
        res = eng.query_batch(queries, k=3,
                              budget=QueryBudget(max_io_pages=1))
    # One page is less than any real query costs across 2 shards, so the
    # shard-aggregated cap fires at the first round boundary for every
    # query a natural rule (which has priority) didn't already stop.
    assert all(r.stats.rounds == 1 for r in res)
    capped = [r for r in res if r.stats.terminated_by == "budget"]
    assert capped
    assert all(r.stats.budget_exhausted == "io_pages" for r in capped)
    assert all(r.stats.degraded for r in capped)
    assert all(len(r) > 0 for r in res)  # still best-effort answers


def test_telemetry_lands_under_shard_metrics(tiny):
    data, queries = tiny
    registry = MetricsRegistry()
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=1,
                      metrics=registry).fit(data) as eng:
        eng.query_batch(queries, k=3)
    snap = registry.snapshot()
    assert {"shard.build.seconds", "shard.rounds", "shard.queries",
            "shard.worker.seconds"} <= set(snap)
    assert registry.counter("shard.queries").value == len(queries)
    assert registry.counter("shard.rounds").value > 0


# -- lifecycle and validation ------------------------------------------------


def test_engine_validates_arguments(tiny):
    data, queries = tiny
    with pytest.raises(ValueError, match="n_shards"):
        ShardedC2LSH(n_shards=0)
    with pytest.raises(ValueError, match="n_workers"):
        ShardedC2LSH(n_workers=-1)
    with pytest.raises(ValueError, match="shards"):
        ShardedC2LSH(n_shards=4, n_workers=0).fit(data[:3])
    eng = ShardedC2LSH(n_shards=2, n_workers=0, seed=0)
    with pytest.raises(RuntimeError, match="not fitted"):
        eng.query(queries[0])
    eng.fit(data)
    with pytest.raises(ValueError, match="k must be positive"):
        eng.query(queries[0], k=0)
    with pytest.raises(RuntimeError, match="already fitted"):
        eng.fit(data)
    eng.close()
    with pytest.raises(RuntimeError, match="closed"):
        eng.query(queries[0])


def test_page_latency_validation():
    with pytest.raises(ValueError, match="latency"):
        PageManager(page_latency_s=-0.1)
    pm = PageManager(page_latency_s=0.002)
    import time

    start = time.perf_counter()
    pm.charge_read(10)
    assert time.perf_counter() - start >= 0.015
    assert pm.stats.reads == 10


# -- persistence -------------------------------------------------------------


def test_save_load_round_trip(tiny, tmp_path):
    data, queries = tiny
    with ShardedC2LSH(n_shards=3, n_workers=0, seed=13,
                      page_accounting=True).fit(data) as eng:
        expected = eng.query_batch(queries, k=5)
        path = eng.save(tmp_path / "sharded")
        boundaries = eng.shard_boundaries
    with load_sharded(path, n_workers=0) as restored:
        assert restored.shard_boundaries == boundaries
        assert restored.n_shards == 3
        _assert_same_results(expected, restored.query_batch(queries, k=5))


def test_load_detects_corruption(tiny, tmp_path):
    data, _ = tiny
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=13).fit(data) as eng:
        path = eng.save(tmp_path / "sharded")
    blob = bytearray((tmp_path / "sharded.npz").read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    (tmp_path / "sharded.npz").write_bytes(bytes(blob))
    with pytest.raises(CorruptIndexError):
        load_sharded(path, n_workers=0)


def test_load_rejects_wrong_kind(tiny, tmp_path):
    data, _ = tiny
    from repro.core.persist import save_c2lsh

    index = C2LSH(seed=1).fit(data)
    path = save_c2lsh(index, tmp_path / "plain")
    with pytest.raises(CorruptIndexError, match="kind"):
        load_sharded(path, n_workers=0)


def test_save_requires_fitted(tmp_path):
    eng = ShardedC2LSH(n_shards=2, n_workers=0)
    with pytest.raises(ValueError, match="unfitted"):
        eng.save(tmp_path / "nope")


# -- process-pool integration (slow; deselected from the main CI job) --------


@pytest.mark.shard
def test_process_workers_match_unsharded(clustered):
    data, queries = clustered
    expected = C2LSH(seed=33).fit(data).query_batch(queries, k=10)
    with ShardedC2LSH(n_shards=4, n_workers=2, seed=33).fit(data) as eng:
        _assert_same_results(expected, eng.query_batch(queries, k=10))


@pytest.mark.shard
def test_results_independent_of_worker_count(tiny):
    """The worker layout (1, 2 procs, or serial) never changes answers."""
    data, queries = tiny
    outcomes = []
    for workers in (0, 1, 2):
        with ShardedC2LSH(n_shards=4, n_workers=workers,
                          seed=17).fit(data) as eng:
            outcomes.append(eng.query_batch(queries, k=5))
    _assert_same_results(outcomes[0], outcomes[1])
    _assert_same_results(outcomes[0], outcomes[2])


@pytest.mark.shard
def test_process_budget_and_accounting(tiny):
    data, queries = tiny
    budget = QueryBudget(max_candidates=6)
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=29,
                      page_accounting=True).fit(data) as eng:
        expected = eng.query_batch(queries, k=4, budget=budget)
    with ShardedC2LSH(n_shards=2, n_workers=2, seed=29,
                      page_accounting=True).fit(data) as eng:
        got = eng.query_batch(queries, k=4, budget=budget)
    _assert_same_results(expected, got)
    for r, g in zip(expected, got):
        assert r.stats.io_reads == g.stats.io_reads


@pytest.mark.shard
def test_load_onto_process_workers(tiny, tmp_path):
    data, queries = tiny
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=13).fit(data) as eng:
        expected = eng.query_batch(queries, k=5)
        path = eng.save(tmp_path / "sharded")
    with load_sharded(path, n_workers=2) as restored:
        _assert_same_results(expected, restored.query_batch(queries, k=5))


# -- cross-process observability (PR 7) --------------------------------------


def _worker_span_events(tr):
    from repro.obs import SpanEvent

    return [e for e in tr.events if isinstance(e, SpanEvent)
            and e.name.startswith("shard.worker.")]


def test_worker_spans_propagate_with_identity(tiny):
    """Per-shard spans carry shard id, pid and kernel tier, stitched in."""
    import os

    from repro.obs import SpanEvent, tracing

    data, queries = tiny
    with ShardedC2LSH(n_shards=3, n_workers=0, seed=5,
                      page_accounting=True).fit(data) as eng:
        with tracing() as tr:
            eng.query_batch(queries, k=5)
    spans = _worker_span_events(tr)
    assert spans
    round_spans = [e for e in spans if e.name == "shard.worker.round"]
    assert {e.attrs["shard"] for e in round_spans} == {0, 1, 2}
    assert all(e.attrs["pid"] == os.getpid() for e in spans)  # serial mode
    assert all(e.attrs["kernels"] in ("numpy", "numba") for e in spans)
    # Every worker span is parented inside the coordinator's trace.
    span_ids = {e.span_id for e in tr.events if isinstance(e, SpanEvent)}
    assert all(e.parent_id in span_ids for e in spans)


def test_worker_span_pages_sum_to_query_totals(tiny):
    """Acceptance: per-shard page counts sum to the coordinator totals."""
    from repro.obs import tracing

    data, queries = tiny
    with ShardedC2LSH(n_shards=3, n_workers=0, seed=5,
                      page_accounting=True).fit(data) as eng:
        with tracing() as tr:
            results = eng.query_batch(queries, k=5)
        span_pages = sum(e.attrs.get("pages", 0)
                         for e in _worker_span_events(tr))
        stats_pages = sum(r.stats.io_reads for r in results)
        assert span_pages == stats_pages > 0
        assert eng.metrics.counter("shard.io.pages").value == stats_pages
        # The worker-shipped per-shard counters agree with the total too.
        per_shard = {name: metric.value for name, metric in eng.metrics
                     if name.startswith("shard.worker.")
                     and name.endswith(".io.pages")}
        assert len(per_shard) == 3
        assert sum(per_shard.values()) == stats_pages


def test_worker_counters_fold_even_untraced(tiny):
    """Counter deltas ship with every round, tracing active or not."""
    data, queries = tiny
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=5,
                      page_accounting=True).fit(data) as eng:
        eng.query_batch(queries, k=5)
        snapshot = eng.telemetry_snapshot()
    assert snapshot["shard.worker.0.rounds"] >= 1
    assert snapshot["shard.worker.1.rounds"] >= 1
    assert snapshot["shard.worker.0.io.pages"] > 0


def test_worker_spans_jsonl_round_trip(tiny, tmp_path):
    """Grafted worker spans survive the JSONL round trip exactly."""
    from repro.obs import JsonlSink, SnapshotSink, load_jsonl, replay, \
        tracing

    data, queries = tiny
    path = tmp_path / "events.jsonl"
    live = SnapshotSink()
    with ShardedC2LSH(n_shards=2, n_workers=0, seed=5,
                      page_accounting=True).fit(data) as eng:
        with tracing(live, JsonlSink(path)):
            eng.query_batch(queries, k=5)
    replayed, = replay(load_jsonl(path), SnapshotSink())
    assert replayed.snapshot() == live.snapshot()
    assert live.registry.counter(
        "span.shard.worker.round.count").value > 0


def test_explain_sharded_per_shard_rows(tiny):
    data, queries = tiny
    with ShardedC2LSH(n_shards=3, n_workers=0, seed=5,
                      page_accounting=True).fit(data) as eng:
        explanation = eng.explain(queries[0], k=4)
        with pytest.raises(ValueError, match="k must be positive"):
            eng.explain(queries[0], k=0)
        unsharded = C2LSH(seed=5, page_manager=PageManager()).fit(data)
        expected = unsharded.query(queries[0], k=4)
    assert explanation.spans
    assert {s.shard for s in explanation.spans} <= {0, 1, 2}
    assert sum(s.pages for s in explanation.spans) == explanation.io_reads
    np.testing.assert_array_equal(explanation.result_ids, expected.ids)
    rendered = explanation.render()
    assert "shard" in rendered
    assert "kernels" in rendered
    assert "=>" in rendered


def test_budget_trip_writes_flight_dump(tiny, tmp_path):
    """Acceptance: a budget-exhausted query leaves a postmortem the
    ``python -m repro.obs`` CLI can summarize."""
    import json

    from repro.obs import FlightRecorder, flight
    from repro.obs.__main__ import main as obs_main

    data, queries = tiny
    mine = FlightRecorder(capacity=64, directory=str(tmp_path),
                          min_dump_interval_s=0.0)
    old = flight.install(mine)
    try:
        with ShardedC2LSH(n_shards=2, n_workers=0, seed=3,
                          page_accounting=True).fit(data) as eng:
            results = eng.query_batch(queries, k=3,
                                      budget=QueryBudget(max_io_pages=1))
    finally:
        flight.install(old)
    assert any(r.stats.budget_exhausted for r in results)
    dumps = sorted(tmp_path.glob("flight_budget_exhausted_*.json"))
    assert dumps
    payload = json.loads(dumps[0].read_text())
    assert payload["reason"] == "budget_exhausted"
    assert payload["extra"]["engine"] == "sharded"
    assert any(e["kind"] == "budget_exhausted" for e in payload["events"])
    assert obs_main([str(dumps[0])]) == 0


@pytest.mark.shard
def test_worker_spans_propagate_across_processes(tiny):
    """Spans recorded in real worker processes reach the coordinator."""
    import os

    from repro.obs import tracing

    data, queries = tiny
    with ShardedC2LSH(n_shards=4, n_workers=2, seed=5,
                      page_accounting=True).fit(data) as eng:
        with tracing() as tr:
            results = eng.query_batch(queries, k=5)
    spans = [e for e in _worker_span_events(tr)
             if e.name == "shard.worker.round"]
    assert {e.attrs["shard"] for e in spans} == {0, 1, 2, 3}
    pids = {e.attrs["pid"] for e in spans}
    assert os.getpid() not in pids      # recorded worker-side
    assert len(pids) == 2               # one pid per worker pool
    span_pages = sum(e.attrs.get("pages", 0)
                     for e in _worker_span_events(tr))
    assert span_pages == sum(r.stats.io_reads for r in results)
