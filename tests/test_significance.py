"""Tests for the paired statistical comparison helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.significance import (
    bootstrap_mean_diff,
    sign_test,
)


class TestSignTest:
    def test_counts(self):
        r = sign_test([3, 1, 2, 2], [1, 3, 2, 1])
        assert r.n_pairs == 4
        assert r.wins == 2
        assert r.losses == 1
        assert r.ties == 1

    def test_identical_inputs_not_significant(self):
        r = sign_test([1.0] * 20, [1.0] * 20)
        assert r.p_value == 1.0
        assert not r.significant()

    def test_uniform_domination_is_significant(self):
        a = np.arange(20) + 1.0
        r = sign_test(a, a - 0.5)
        assert r.wins == 20
        assert r.p_value < 0.001
        assert r.significant()

    def test_balanced_differences_not_significant(self):
        a = np.array([1.0, 2.0] * 10)
        b = np.array([2.0, 1.0] * 10)
        r = sign_test(a, b)
        assert r.p_value > 0.5

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(30), rng.random(30)
        assert sign_test(a, b).p_value == pytest.approx(
            sign_test(b, a).p_value)

    def test_exact_small_case(self):
        """5 wins of 5: two-sided p = 2 * (1/2)^5 = 1/16."""
        r = sign_test([1] * 5, [0] * 5)
        assert r.p_value == pytest.approx(2 / 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            sign_test([1, 2], [1])
        with pytest.raises(ValueError):
            sign_test([], [])

    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_property_p_is_probability(self, n, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.random(n), rng.random(n)
        r = sign_test(a, b)
        assert 0.0 <= r.p_value <= 1.0
        assert r.wins + r.losses + r.ties == n


class TestBootstrap:
    def test_clear_difference_excludes_zero(self):
        rng = np.random.default_rng(0)
        b = rng.random(50)
        a = b + 1.0
        r = bootstrap_mean_diff(a, b, seed=1)
        assert r.mean_diff == pytest.approx(1.0)
        assert r.excludes_zero
        assert r.ci_low <= r.mean_diff <= r.ci_high

    def test_no_difference_includes_zero(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal(100)
        b = a + rng.standard_normal(100) * 0.001 \
            - rng.standard_normal(100) * 0.001
        r = bootstrap_mean_diff(a, a.copy(), seed=1)
        assert not r.excludes_zero
        del b

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        a, b = rng.random(30), rng.random(30)
        r1 = bootstrap_mean_diff(a, b, seed=7)
        r2 = bootstrap_mean_diff(a, b, seed=7)
        assert (r1.ci_low, r1.ci_high) == (r2.ci_low, r2.ci_high)

    def test_wider_confidence_widens_interval(self):
        rng = np.random.default_rng(4)
        a, b = rng.random(40), rng.random(40)
        narrow = bootstrap_mean_diff(a, b, confidence=0.5, seed=0)
        wide = bootstrap_mean_diff(a, b, confidence=0.99, seed=0)
        assert (wide.ci_high - wide.ci_low) \
            >= (narrow.ci_high - narrow.ci_low)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_diff([1], [1, 2])
        with pytest.raises(ValueError):
            bootstrap_mean_diff([1, 2], [1, 2], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_mean_diff([1, 2], [1, 2], n_resamples=3)
