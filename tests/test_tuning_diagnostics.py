"""Tests for the auto-tuner and the family-calibration diagnostics."""

import math

import numpy as np
import pytest

from repro.core import tune_c2lsh
from repro.core.tuning import TuningResult
from repro.hashing import (
    PStableFamily,
    SignRandomProjectionFamily,
    check_family_calibration,
    empirical_collision_probability,
    estimate_rho,
)


@pytest.fixture(scope="module")
def tune_data():
    from repro.data import gaussian_clusters
    return gaussian_clusters(1230, 16, n_clusters=8, cluster_std=1.0,
                             spread=10.0, seed=0)


class TestTuneC2LSH:
    def test_reaches_easy_target(self, tune_data):
        result = tune_c2lsh(tune_data, target_recall=0.7, k=5,
                            c_grid=(2,), budget_grid=(25, 100), seed=0)
        assert result.reached_target
        assert result.best.recall >= 0.7

    def test_trials_cover_grid(self, tune_data):
        result = tune_c2lsh(tune_data, target_recall=0.7, k=5,
                            c_grid=(2, 3), budget_grid=(25, 100), seed=0)
        assert len(result.trials) == 4

    def test_best_is_cheapest_eligible(self, tune_data):
        result = tune_c2lsh(tune_data, target_recall=0.7, k=5,
                            c_grid=(2, 3), budget_grid=(25, 100), seed=0)
        eligible = [t for t in result.trials if t.recall >= 0.7]
        assert result.best.cost == min(t.cost for t in eligible)

    def test_build_best_produces_working_index(self, tune_data):
        result = tune_c2lsh(tune_data, target_recall=0.7, k=5,
                            c_grid=(2,), budget_grid=(100,), seed=0)
        index = result.build_best().fit(tune_data)
        assert len(index.query(tune_data[0], k=5)) == 5

    def test_unreachable_target_reports_failure(self, tune_data):
        result = TuningResult(best=None, trials=[], target_recall=2.0)
        assert not result.reached_target
        with pytest.raises(RuntimeError):
            result.build_best()

    def test_validation(self, tune_data):
        with pytest.raises(ValueError):
            tune_c2lsh(tune_data, target_recall=0.0)
        with pytest.raises(ValueError):
            tune_c2lsh(tune_data[:10], n_validation=30)


class TestDiagnostics:
    def test_empirical_matches_model_pstable(self):
        family = PStableFamily(16, w=2.0)
        for s in (0.5, 1.0, 3.0):
            rate = empirical_collision_probability(family, s,
                                                   n_functions=4000)
            assert rate == pytest.approx(family.collision_probability(s),
                                         abs=0.03)

    def test_zero_distance_always_collides(self):
        family = PStableFamily(8, w=1.0)
        assert empirical_collision_probability(family, 0.0, 500) == 1.0

    def test_calibration_report_pass(self):
        family = PStableFamily(16, w=2.0)
        report = check_family_calibration(family, [0.5, 1.0, 2.0],
                                          n_functions=3000)
        assert report.calibrated
        assert len(report.rows()) == 3

    def test_calibration_report_fail_for_wrong_model(self):
        """A family lying about its model must be caught."""
        family = PStableFamily(16, w=2.0)

        class Liar:
            dim = 16

            def sample(self, m, rng):
                return family.sample(m, rng)

            def collision_probability(self, s):
                return 0.99  # nonsense

        report = check_family_calibration(Liar(), [3.0], n_functions=2000)
        assert not report.calibrated

    def test_estimate_rho_sensible(self):
        family = PStableFamily(16, w=2.0)
        rho = estimate_rho(family, radius=1.0, c=2.0, n_functions=4000)
        assert 0.2 < rho < 0.9

    def test_estimate_rho_angular(self):
        family = SignRandomProjectionFamily(16)
        rho = estimate_rho(family, radius=math.pi / 6, c=2.0,
                           n_functions=4000)
        assert 0.0 < rho < 1.0

    def test_validation(self):
        family = PStableFamily(8, w=1.0)
        with pytest.raises(ValueError):
            empirical_collision_probability(family, -1.0)
        with pytest.raises(ValueError):
            empirical_collision_probability(family, 1.0, n_functions=0)
        with pytest.raises(ValueError):
            check_family_calibration(family, [])
        with pytest.raises(ValueError):
            estimate_rho(family, radius=0.0)
