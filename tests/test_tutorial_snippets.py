"""Executable-documentation test: run the tutorial's Python snippets.

Docs rot; this test extracts every complete Python block from
``docs/TUTORIAL.md`` and executes them in one shared namespace (in order,
like a reader following along), so the tutorial cannot drift from the API.
Blocks containing ``...`` placeholders (the bring-your-own-family sketch)
and shell blocks are skipped by construction.
"""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).resolve().parent.parent \
    / "docs" / "TUTORIAL.md"


def python_blocks():
    text = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    return [b for b in blocks if "..." not in b]


BLOCKS = python_blocks()


def test_tutorial_exists_and_has_blocks():
    assert TUTORIAL.exists()
    assert len(BLOCKS) >= 6


def test_tutorial_blocks_run_in_order(tmp_path, monkeypatch):
    """Execute the runnable blocks sequentially in one namespace."""
    monkeypatch.chdir(tmp_path)  # snippet 5 writes index.npz
    namespace = {}
    # The tutorial's dataset is big for a unit test; shrink it by seeding
    # the namespace with smaller data after the first block runs.
    for i, block in enumerate(BLOCKS):
        if i == 0:
            # Patch the first block's size down, keeping the code intact.
            block = block.replace("(20_000, 64)", "(2_000, 64)")
        try:
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - assertion formatting
            pytest.fail(f"tutorial block {i} failed: {exc}\n---\n{block}")
    # The walkthrough should have produced a persisted index and a live one.
    assert (tmp_path / "index.npz").exists()
    assert "live" in namespace
