"""Tests for the insert/delete wrapper over C2LSH."""

import numpy as np
import pytest

from repro.core.updatable import UpdatableC2LSH
from repro.data import exact_knn


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def make_index(**kwargs):
    defaults = dict(seed=0, c=2, min_index_size=100)
    defaults.update(kwargs)
    return UpdatableC2LSH(**defaults)


class TestInsert:
    def test_handles_are_sequential(self, rng):
        index = make_index()
        h1 = index.insert(rng.standard_normal((10, 8)))
        h2 = index.insert(rng.standard_normal(8))
        assert h1.tolist() == list(range(10))
        assert h2.tolist() == [10]

    def test_len_counts_live_points(self, rng):
        index = make_index()
        index.insert(rng.standard_normal((30, 8)))
        assert len(index) == 30
        index.delete([3, 4])
        assert len(index) == 28

    def test_dimension_mismatch_rejected(self, rng):
        index = make_index()
        index.insert(rng.standard_normal((5, 8)))
        with pytest.raises(ValueError):
            index.insert(rng.standard_normal((5, 9)))

    def test_empty_insert_rejected(self):
        with pytest.raises(ValueError):
            make_index().insert(np.empty((0, 4)))

    def test_small_sets_stay_brute_force(self, rng):
        index = make_index(min_index_size=1000)
        index.insert(rng.standard_normal((50, 8)))
        assert index.rebuilds == 0

    def test_rebuild_triggers_past_threshold(self, rng):
        index = make_index(min_index_size=50, rebuild_threshold=0.2)
        index.insert(rng.standard_normal((200, 8)))
        assert index.rebuilds >= 1


class TestQuery:
    def test_matches_exact_knn_through_growth(self, rng):
        index = make_index(min_index_size=50)
        all_rows = []
        for _ in range(6):
            batch = rng.standard_normal((60, 8)) * 5
            index.insert(batch)
            all_rows.append(batch)
        data = np.vstack(all_rows)
        q = data[17] + 0.001
        result = index.query(q, k=5)
        true_ids, _ = exact_knn(data, q, 5)
        assert set(result.ids.tolist()) == set(true_ids.tolist())

    def test_query_sees_unindexed_buffer(self, rng):
        index = make_index(min_index_size=10, rebuild_threshold=1.0)
        index.insert(rng.standard_normal((50, 8)))
        special = np.full(8, 42.0)
        handle = index.insert(special)[0]
        result = index.query(special, k=1)
        assert result.ids[0] == handle
        assert result.distances[0] == 0.0

    def test_deleted_points_never_returned(self, rng):
        index = make_index(min_index_size=10)
        data = rng.standard_normal((100, 8))
        handles = index.insert(data)
        target = handles[7]
        index.delete(target)
        result = index.query(data[7], k=10)
        assert target not in result.ids

    def test_delete_from_buffer(self, rng):
        index = make_index(min_index_size=10, rebuild_threshold=1.0)
        index.insert(rng.standard_normal((20, 8)))
        special = np.full(8, 9.0)
        handle = index.insert(special)[0]
        index.delete(handle)
        result = index.query(special, k=3)
        assert handle not in result.ids

    def test_handles_stable_across_rebuilds(self, rng):
        index = make_index(min_index_size=20, rebuild_threshold=0.1)
        first = rng.standard_normal((30, 8))
        handles = index.insert(first)
        for _ in range(5):
            index.insert(rng.standard_normal((20, 8)) + 50)
        assert index.rebuilds >= 1
        result = index.query(first[3], k=1)
        assert result.ids[0] == handles[3]

    def test_deleted_points_dropped_at_rebuild(self, rng):
        index = make_index(min_index_size=10, rebuild_threshold=0.05)
        handles = index.insert(rng.standard_normal((100, 8)))
        index.delete(handles[:50])
        index.insert(rng.standard_normal((30, 8)))  # forces rebuild
        assert len(index) == 80

    def test_query_empty_rejected(self):
        with pytest.raises(RuntimeError):
            make_index().query(np.zeros(4))

    def test_unknown_handle_rejected(self, rng):
        index = make_index()
        index.insert(rng.standard_normal((5, 4)))
        with pytest.raises(KeyError):
            index.delete(99)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            UpdatableC2LSH(rebuild_threshold=0.0)
        with pytest.raises(ValueError):
            UpdatableC2LSH(min_index_size=0)
        with pytest.raises(ValueError):
            UpdatableC2LSH(family=object())
        index = make_index()
        index.insert(rng.standard_normal((5, 4)))
        with pytest.raises(ValueError):
            index.query(np.zeros(5))
        with pytest.raises(ValueError):
            index.query(np.zeros(4), k=0)

    def test_repr(self, rng):
        index = make_index()
        index.insert(rng.standard_normal((5, 4)))
        assert "live=5" in repr(index)
