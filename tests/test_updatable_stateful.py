"""Stateful property tests: UpdatableC2LSH against a brute-force oracle.

Hypothesis drives random interleavings of inserts, deletes and queries
while a dict-based oracle tracks the live points; after every step the
index's 1-NN answer must match the oracle exactly (the 1-NN is unique with
probability 1 for continuous data, so approximate search with the fallback
guarantee must find it among its candidates — and the wrapper's buffer
merge must never lose or resurrect points).

The second machine drives the durable facade through crashes: random
insert/delete/checkpoint interleavings interrupted by clean kills,
fault-injected kills mid-record, and WAL files truncated at arbitrary
byte offsets. Recovery must reproduce exactly the live-point set and
handle assignments implied by the records that survived on disk.
"""

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import (
    DurableUpdatableC2LSH,
    FaultInjector,
    FaultPlan,
    FaultRule,
    TransientIOError,
)
from repro.core.updatable import UpdatableC2LSH
from repro.durability import scan_log

DIM = 6


class UpdatableOracle(RuleBasedStateMachine):
    """Random insert/delete/query interleavings vs a dict oracle."""

    @initialize(seed=st.integers(min_value=0, max_value=2**31))
    def setup(self, seed):
        self.rng = np.random.default_rng(seed)
        self.index = UpdatableC2LSH(seed=0, c=2, min_index_size=60,
                                    rebuild_threshold=0.3)
        self.oracle = {}

    @rule(count=st.integers(min_value=1, max_value=25))
    def insert(self, count):
        batch = self.rng.standard_normal((count, DIM)) * 5
        handles = self.index.insert(batch)
        self.oracle.update(zip(handles.tolist(), batch))

    @precondition(lambda self: len(self.oracle) > 3)
    @rule(fraction=st.floats(min_value=0.1, max_value=0.5))
    def delete_some(self, fraction):
        live = sorted(self.oracle)
        count = max(1, int(len(live) * fraction))
        victims = [live[int(i)] for i in
                   self.rng.choice(len(live), size=count, replace=False)]
        self.index.delete(victims)
        for handle in victims:
            del self.oracle[handle]

    @precondition(lambda self: len(self.oracle) >= 1)
    @rule()
    def query_matches_oracle(self):
        handles = np.array(sorted(self.oracle))
        rows = np.vstack([self.oracle[h] for h in handles])
        anchor = rows[int(self.rng.integers(0, len(rows)))]
        query = anchor + 1e-4 * self.rng.standard_normal(DIM)
        result = self.index.query(query, k=1)
        true_handle = handles[
            int(np.argmin(np.linalg.norm(rows - query, axis=1)))
        ]
        assert result.ids[0] == true_handle

    @invariant()
    def live_count_matches(self):
        if hasattr(self, "oracle"):
            assert len(self.index) == len(self.oracle)


TestUpdatableOracle = UpdatableOracle.TestCase
TestUpdatableOracle.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None,
)


class DurableCrashRecovery(RuleBasedStateMachine):
    """Random updates + crashes vs an oracle replay of the durable log.

    The oracle is a pair ``(base, journal)``: ``base`` is the live-point
    dict at the last checkpoint, ``journal`` the mutations logged since,
    keyed by their WAL sequence numbers. A crash at an arbitrary WAL byte
    offset keeps exactly the journal prefix whose frames survived intact,
    so the expected post-recovery state is ``base`` plus that prefix —
    computed here in plain Python, independently of the replay code.
    """

    KWARGS = dict(seed=0, c=2, min_index_size=60, rebuild_threshold=0.3,
                  fsync=False)

    @initialize(seed=st.integers(min_value=0, max_value=2**31))
    def setup(self, seed):
        self.dir = tempfile.mkdtemp(prefix="repro-durable-")
        self.rng = np.random.default_rng(seed)
        self.index = DurableUpdatableC2LSH(self.dir, **self.KWARGS)
        self.base = {}       # live points folded into the last checkpoint
        self.journal = []    # [(seqno, "insert"|"delete", payload)]

    def teardown(self):
        if hasattr(self, "index"):
            self.index.close()
        if hasattr(self, "dir"):
            shutil.rmtree(self.dir, ignore_errors=True)

    # -- the oracle ----------------------------------------------------------

    def _replay(self, upto_seqno):
        """Live points implied by ``base`` + journal records <= seqno."""
        state = dict(self.base)
        for seqno, kind, payload in self.journal:
            if seqno > upto_seqno:
                break
            if kind == "insert":
                state.update(payload)
            else:
                for handle in payload:
                    state.pop(handle, None)
        return state

    @property
    def oracle(self):
        return self._replay(upto_seqno=2**62)

    def _last_logged_seqno(self):
        return self.index._wal.next_seqno - 1

    # -- mutations -----------------------------------------------------------

    @rule(count=st.integers(min_value=1, max_value=25))
    def insert(self, count):
        batch = self.rng.standard_normal((count, DIM)) * 5
        handles = self.index.insert(batch)
        self.journal.append((self._last_logged_seqno(), "insert",
                             dict(zip(handles.tolist(), batch))))

    @precondition(lambda self: len(self.oracle) > 3)
    @rule(fraction=st.floats(min_value=0.1, max_value=0.5))
    def delete_some(self, fraction):
        live = sorted(self.oracle)
        count = max(1, int(len(live) * fraction))
        victims = [live[int(i)] for i in
                   self.rng.choice(len(live), size=count, replace=False)]
        self.index.delete(victims)
        self.journal.append((self._last_logged_seqno(), "delete", victims))

    @rule()
    def checkpoint(self):
        self.index.checkpoint()
        self.base = self.oracle
        self.journal = []

    # -- crashes -------------------------------------------------------------

    def _reopen(self):
        self.index.close()
        self.index = DurableUpdatableC2LSH(self.dir, **self.KWARGS)

    def _check_recovered(self):
        oracle = self.oracle
        assert len(self.index) == len(oracle)
        if oracle:
            handles = np.array(sorted(oracle))
            rows = np.vstack([oracle[h] for h in handles])
            anchor = rows[int(self.rng.integers(0, len(rows)))]
            query = anchor + 1e-4 * self.rng.standard_normal(DIM)
            result = self.index.query(query, k=1)
            true_handle = handles[
                int(np.argmin(np.linalg.norm(rows - query, axis=1)))
            ]
            assert result.ids[0] == true_handle

    @rule()
    def crash_and_recover(self):
        """A clean kill: every logged record is on disk."""
        self._reopen()
        self._check_recovered()

    @rule(count=st.integers(min_value=1, max_value=10))
    def killed_mid_append(self, count):
        """FaultInjector tears the frame; the op must not survive."""
        self.index._wal.fault_injector = FaultInjector(
            FaultPlan((FaultRule("wal_append", "error"),)))
        with pytest.raises(TransientIOError):
            self.index.insert(self.rng.standard_normal((count, DIM)))
        self._reopen()
        self._check_recovered()

    @rule(cut=st.floats(min_value=0.0, max_value=1.0))
    def crash_at_arbitrary_byte(self, cut):
        """Truncate the WAL mid-file; only intact frames survive."""
        self.index.close()
        path = self.index.wal_path
        with open(path, "rb") as fh:
            size = len(fh.read())
        header = 16
        offset = header + int(round(cut * (size - header)))
        with open(path, "r+b") as fh:
            fh.truncate(offset)
        survived = scan_log(path).records
        last = survived[-1].seqno if survived else -1
        # Rolled-back records are gone for good; the survivors stay in
        # the journal (they are still on disk, a later crash may cut
        # deeper), and `base` still mirrors the on-disk checkpoint.
        self.journal = [entry for entry in self.journal if entry[0] <= last]
        self.index = DurableUpdatableC2LSH(self.dir, **self.KWARGS)
        self._check_recovered()

    # -- invariants ----------------------------------------------------------

    @invariant()
    def live_count_matches(self):
        if hasattr(self, "index"):
            assert len(self.index) == len(self.oracle)


TestDurableCrashRecovery = DurableCrashRecovery.TestCase
TestDurableCrashRecovery.settings = settings(
    max_examples=10, stateful_step_count=15, deadline=None,
)
