"""Stateful property test: UpdatableC2LSH against a brute-force oracle.

Hypothesis drives random interleavings of inserts, deletes and queries
while a dict-based oracle tracks the live points; after every step the
index's 1-NN answer must match the oracle exactly (the 1-NN is unique with
probability 1 for continuous data, so approximate search with the fallback
guarantee must find it among its candidates — and the wrapper's buffer
merge must never lose or resurrect points).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.updatable import UpdatableC2LSH

DIM = 6


class UpdatableOracle(RuleBasedStateMachine):
    """Random insert/delete/query interleavings vs a dict oracle."""

    @initialize(seed=st.integers(min_value=0, max_value=2**31))
    def setup(self, seed):
        self.rng = np.random.default_rng(seed)
        self.index = UpdatableC2LSH(seed=0, c=2, min_index_size=60,
                                    rebuild_threshold=0.3)
        self.oracle = {}

    @rule(count=st.integers(min_value=1, max_value=25))
    def insert(self, count):
        batch = self.rng.standard_normal((count, DIM)) * 5
        handles = self.index.insert(batch)
        self.oracle.update(zip(handles.tolist(), batch))

    @precondition(lambda self: len(self.oracle) > 3)
    @rule(fraction=st.floats(min_value=0.1, max_value=0.5))
    def delete_some(self, fraction):
        live = sorted(self.oracle)
        count = max(1, int(len(live) * fraction))
        victims = [live[int(i)] for i in
                   self.rng.choice(len(live), size=count, replace=False)]
        self.index.delete(victims)
        for handle in victims:
            del self.oracle[handle]

    @precondition(lambda self: len(self.oracle) >= 1)
    @rule()
    def query_matches_oracle(self):
        handles = np.array(sorted(self.oracle))
        rows = np.vstack([self.oracle[h] for h in handles])
        anchor = rows[int(self.rng.integers(0, len(rows)))]
        query = anchor + 1e-4 * self.rng.standard_normal(DIM)
        result = self.index.query(query, k=1)
        true_handle = handles[
            int(np.argmin(np.linalg.norm(rows - query, axis=1)))
        ]
        assert result.ids[0] == true_handle

    @invariant()
    def live_count_matches(self):
        if hasattr(self, "oracle"):
            assert len(self.index) == len(self.oracle)


TestUpdatableOracle = UpdatableOracle.TestCase
TestUpdatableOracle.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None,
)
