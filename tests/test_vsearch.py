"""Tests for the vectorized row-wise binary search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.vsearch import row_searchsorted


class TestRowSearchsorted:
    def test_matches_numpy_left(self):
        rows = np.array([[1, 3, 5, 7], [0, 0, 2, 2]])
        targets = np.array([4, 0])
        got = row_searchsorted(rows, targets, side="left")
        assert got.tolist() == [2, 0]

    def test_matches_numpy_right(self):
        rows = np.array([[1, 3, 5, 7], [0, 0, 2, 2]])
        targets = np.array([3, 0])
        got = row_searchsorted(rows, targets, side="right")
        assert got.tolist() == [2, 2]

    def test_target_below_all(self):
        rows = np.array([[5, 6, 7]])
        assert row_searchsorted(rows, np.array([0])).tolist() == [0]

    def test_target_above_all(self):
        rows = np.array([[5, 6, 7]])
        assert row_searchsorted(rows, np.array([100])).tolist() == [3]

    def test_empty_rows(self):
        rows = np.empty((3, 0))
        got = row_searchsorted(rows, np.zeros(3))
        assert got.tolist() == [0, 0, 0]

    def test_single_row_single_element(self):
        rows = np.array([[2]])
        assert row_searchsorted(rows, np.array([2]), "left").tolist() == [0]
        assert row_searchsorted(rows, np.array([2]), "right").tolist() == [1]

    def test_float_rows(self):
        rows = np.array([[0.1, 0.2, 0.3]])
        assert row_searchsorted(rows, np.array([0.25])).tolist() == [2]

    def test_bad_side_rejected(self):
        with pytest.raises(ValueError):
            row_searchsorted(np.zeros((1, 2)), np.zeros(1), side="middle")

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            row_searchsorted(np.zeros((2, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            row_searchsorted(np.zeros(3), np.zeros(1))

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=40),
        st.sampled_from(["left", "right"]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_matches_numpy(self, m, n, side, seed):
        rng = np.random.default_rng(seed)
        rows = np.sort(rng.integers(-15, 15, size=(m, n)), axis=1)
        targets = rng.integers(-18, 18, size=m)
        got = row_searchsorted(rows, targets, side=side)
        want = np.array([
            np.searchsorted(rows[j], targets[j], side=side) for j in range(m)
        ])
        assert np.array_equal(got, want)

    def test_batched_targets_match_per_row(self):
        rows = np.array([[1, 3, 5, 7], [0, 0, 2, 2]])
        targets = np.array([[4, 0], [8, -1], [1, 2]])  # (Q=3, m=2)
        got = row_searchsorted(rows, targets, side="left")
        assert got.shape == (3, 2)
        want = np.stack([row_searchsorted(rows, t, side="left")
                         for t in targets])
        assert np.array_equal(got, want)

    def test_batched_empty_rows(self):
        got = row_searchsorted(np.empty((2, 0)), np.zeros((5, 2)))
        assert got.shape == (5, 2)
        assert not got.any()

    def test_batched_zero_queries(self):
        rows = np.array([[1, 2, 3]])
        got = row_searchsorted(rows, np.empty((0, 1)))
        assert got.shape == (0, 1)

    def test_batched_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            row_searchsorted(np.zeros((2, 3)), np.zeros((4, 3)))
        with pytest.raises(ValueError):
            row_searchsorted(np.zeros((2, 3)), np.asarray(1.0))

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=6),
        st.sampled_from(["left", "right"]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_batched_matches_numpy(self, m, n, q, side, seed):
        rng = np.random.default_rng(seed)
        rows = np.sort(rng.integers(-15, 15, size=(m, n)), axis=1)
        targets = rng.integers(-18, 18, size=(q, m))
        got = row_searchsorted(rows, targets, side=side)
        want = np.array([
            [np.searchsorted(rows[j], targets[i, j], side=side)
             for j in range(m)]
            for i in range(q)
        ])
        assert np.array_equal(got, want)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_numpy_floats(self, seed):
        rng = np.random.default_rng(seed)
        rows = np.sort(rng.standard_normal((4, 25)), axis=1)
        targets = rng.standard_normal(4)
        for side in ("left", "right"):
            got = row_searchsorted(rows, targets, side=side)
            want = np.array([
                np.searchsorted(rows[j], targets[j], side=side)
                for j in range(4)
            ])
            assert np.array_equal(got, want)
