"""Tests for multi-word Z-order codes and LLCP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.zorder import (
    code_words,
    deinterleave,
    interleave,
    llcp,
    sort_order,
)


def _reference_bitstring(values, u):
    """Naive reference: the interleaved bitstring as a Python string."""
    m = len(values)
    bits = []
    for round_idx in range(u):
        for j in range(m):
            bits.append((values[j] >> (u - 1 - round_idx)) & 1)
    return "".join(str(b) for b in bits)


def _code_to_bitstring(code, total_bits):
    s = "".join(format(int(word), "064b") for word in code)
    return s[:total_bits]


class TestCodeWords:
    def test_exact_word_boundary(self):
        assert code_words(8, 8) == 1
        assert code_words(8, 16) == 2

    def test_rounding_up(self):
        assert code_words(3, 30) == 2  # 90 bits

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            code_words(0, 8)
        with pytest.raises(ValueError):
            code_words(4, 0)


class TestInterleave:
    def test_single_value_identity_layout(self):
        codes = interleave(np.array([[0b101]]), u=3)
        assert _code_to_bitstring(codes[0], 3) == "101"

    def test_two_values_alternate(self):
        # v0 = 0b11, v1 = 0b00 -> bits 1,0,1,0
        codes = interleave(np.array([[3, 0]]), u=2)
        assert _code_to_bitstring(codes[0], 4) == "1010"

    def test_matches_reference_bitstring(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**9, size=(20, 5))
        codes = interleave(values, u=9)
        for row, code in zip(values, codes):
            assert _code_to_bitstring(code, 45) \
                == _reference_bitstring(row.tolist(), 9)

    def test_multiword_codes(self):
        values = np.array([[2**15 - 1] * 10])  # 10 * 16 = 160 bits, 3 words
        codes = interleave(values, u=16)
        assert codes.shape == (1, 3)

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            interleave(np.array([[8]]), u=3)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            interleave(np.array([[-1]]), u=3)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            interleave(np.array([1, 2, 3]), u=3)


class TestRoundTrip:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_deinterleave_inverts_interleave(self, m, u, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**u, size=(8, m))
        codes = interleave(values, u)
        assert np.array_equal(deinterleave(codes, m, u), values)

    def test_deinterleave_shape_check(self):
        with pytest.raises(ValueError):
            deinterleave(np.zeros((2, 5), dtype=np.uint64), m=2, u=4)


class TestLLCP:
    def test_identical_codes(self):
        codes = interleave(np.array([[5, 6]]), u=4)
        assert llcp(codes, codes[0], 8).tolist() == [8]

    def test_known_prefix_length(self):
        a = interleave(np.array([[0b1000]]), u=4)[0]
        b = interleave(np.array([[0b1001]]), u=4)
        assert llcp(b, a, 4).tolist() == [3]

    def test_first_bit_differs(self):
        a = interleave(np.array([[0b1000]]), u=4)[0]
        b = interleave(np.array([[0b0000]]), u=4)
        assert llcp(b, a, 4).tolist() == [0]

    def test_across_word_boundary(self):
        """Codes agreeing for > 64 bits measure LLCP in the second word."""
        m, u = 5, 16  # 80 bits
        base = np.array([[1, 2, 3, 4, 5]])
        other = base.copy()
        other[0, 0] ^= 1  # flip the lowest bit of v0 -> bit position 64..79
        ca = interleave(base, u)
        cb = interleave(other, u)
        lengths = llcp(cb, ca[0], m * u)
        assert 64 <= lengths[0] < m * u

    def test_word_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            llcp(np.zeros((2, 2), dtype=np.uint64),
                 np.zeros(1, dtype=np.uint64), 64)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_string_prefix(self, seed):
        rng = np.random.default_rng(seed)
        m, u = 4, 9
        values = rng.integers(0, 2**u, size=(10, m))
        qvals = rng.integers(0, 2**u, size=(1, m))
        codes = interleave(values, u)
        qcode = interleave(qvals, u)[0]
        qs = _reference_bitstring(qvals[0].tolist(), u)
        got = llcp(codes, qcode, m * u)
        for row, got_len in zip(values, got):
            ts = _reference_bitstring(row.tolist(), u)
            want = 0
            while want < m * u and ts[want] == qs[want]:
                want += 1
            assert got_len == want


class TestSortOrder:
    def test_orders_lexicographically(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**10, size=(50, 3))
        codes = interleave(values, u=10)
        order = sort_order(codes)
        as_tuples = [tuple(codes[i].tolist()) for i in order]
        assert as_tuples == sorted(as_tuples)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            sort_order(np.zeros(4, dtype=np.uint64))
